//! Checkpoint/resume: serialize search state and evaluator caches to a
//! versioned snapshot file, atomically, via the workspace's zero-dep JSON
//! layer.
//!
//! Two snapshot kinds share one envelope (`format`/`version`/`kind`
//! header):
//!
//! * **`"explainable"`** — the full [`crate::dse::ExplainableDse`] search
//!   state (trace, attempt log, incumbent, visited set, phase machine) plus
//!   the evaluator caches. Resuming replays nothing: the search continues
//!   from the exact attempt it stopped at, bit-for-bit identical to an
//!   uninterrupted run.
//! * **`"baseline"`** — evaluator caches only. Black-box baselines are
//!   resumed *by replay*: every re-evaluated point hits the restored cache
//!   (and does not count against [`crate::Evaluator::unique_evaluations`]),
//!   so the replay is cheap and lands on the same trajectory.
//!
//! Snapshots are written with a write-then-rename so a crash mid-write
//! never corrupts the previous snapshot. See `DESIGN.md` ("Snapshot
//! format") for the on-disk layout and the determinism contract.

use crate::cost::{Evaluation, LayerEval, Sample, Trace};
use crate::dse::{Aggregation, Attempt, DseConfig, PhaseState, SearchState};
use crate::evaluate::{CacheSnapshot, Evaluator, LayerEntry};
use crate::space::DesignPoint;
use accel_model::AcceleratorConfig;
use edse_telemetry::json::{self, Json};
use edse_telemetry::{Collector, Level};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic string identifying a snapshot file.
pub const SNAPSHOT_FORMAT: &str = "edse-snapshot";
/// Current snapshot schema version; loaders reject anything else.
pub const SNAPSHOT_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// JSON codec helpers
// ---------------------------------------------------------------------------

/// Infinity-safe `f64` codec: the JSON layer has no literal for non-finite
/// values, so they round-trip as the strings `"inf"` / `"-inf"` / `"nan"`.
fn num(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::Str("nan".into())
    } else if v > 0.0 {
        Json::Str("inf".into())
    } else {
        Json::Str("-inf".into())
    }
}

fn num_from(j: &Json) -> Result<f64, String> {
    match j {
        Json::Num(n) => Ok(*n),
        Json::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("expected a number, got string `{other}`")),
        },
        other => Err(format!("expected a number, got {other:?}")),
    }
}

fn nums(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|v| num(*v)).collect())
}

fn nums_from(j: &Json) -> Result<Vec<f64>, String> {
    arr(j)?.iter().map(num_from).collect()
}

fn field<'j>(j: &'j Json, key: &str) -> Result<&'j Json, String> {
    j.get(key)
        .ok_or_else(|| format!("snapshot field `{key}` is missing"))
}

fn arr(j: &Json) -> Result<&[Json], String> {
    j.as_arr()
        .ok_or_else(|| format!("expected an array, got {j:?}"))
}

fn str_field(j: &Json, key: &str) -> Result<String, String> {
    field(j, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("snapshot field `{key}` must be a string"))
}

fn usize_field(j: &Json, key: &str) -> Result<usize, String> {
    match field(j, key)? {
        Json::Num(n) if *n >= 0.0 => Ok(*n as usize),
        other => Err(format!(
            "snapshot field `{key}` must be a non-negative number, got {other:?}"
        )),
    }
}

fn f64_field(j: &Json, key: &str) -> Result<f64, String> {
    num_from(field(j, key)?).map_err(|e| format!("snapshot field `{key}`: {e}"))
}

fn bool_field(j: &Json, key: &str) -> Result<bool, String> {
    match field(j, key)? {
        Json::Bool(b) => Ok(*b),
        other => Err(format!(
            "snapshot field `{key}` must be a boolean, got {other:?}"
        )),
    }
}

/// Serializes a serde-capable value through the vendored `serde_json` and
/// re-parses it into the telemetry [`Json`] tree. Used for the deep
/// always-finite types (profiles, mappings, configs, shapes) whose field
/// lists the snapshot layer should not hand-maintain.
fn bridge_to<T: serde::Serialize>(v: &T) -> Result<Json, String> {
    let s = serde_json::to_string(v).map_err(|e| format!("serialize: {e}"))?;
    json::parse(&s).map_err(|e| format!("re-parse serialized value: {e}"))
}

fn bridge_from<T: serde::Deserialize>(j: &Json) -> Result<T, String> {
    serde_json::from_str(&j.to_line()).map_err(|e| format!("deserialize: {e}"))
}

fn opt_to_json<T>(v: &Option<T>, f: impl Fn(&T) -> Result<Json, String>) -> Result<Json, String> {
    match v {
        None => Ok(Json::Null),
        Some(v) => f(v),
    }
}

fn opt_from_json<T>(j: &Json, f: impl Fn(&Json) -> Result<T, String>) -> Result<Option<T>, String> {
    match j {
        Json::Null => Ok(None),
        other => f(other).map(Some),
    }
}

// ---------------------------------------------------------------------------
// Domain converters
// ---------------------------------------------------------------------------

fn point_to_json(p: &DesignPoint) -> Json {
    Json::Arr(p.indices().iter().map(|i| Json::Num(*i as f64)).collect())
}

fn point_from_json(j: &Json) -> Result<DesignPoint, String> {
    let indices = arr(j)?
        .iter()
        .map(|v| match v {
            Json::Num(n) if *n >= 0.0 => Ok(*n as usize),
            other => Err(format!(
                "design-point index must be a number, got {other:?}"
            )),
        })
        .collect::<Result<Vec<usize>, String>>()?;
    Ok(DesignPoint::new(indices))
}

fn sample_to_json(s: &Sample) -> Json {
    Json::obj(vec![
        ("point", point_to_json(&s.point)),
        ("objective", num(s.objective)),
        ("constraint_values", nums(&s.constraint_values)),
        ("feasible", Json::Bool(s.feasible)),
    ])
}

fn sample_from_json(j: &Json) -> Result<Sample, String> {
    Ok(Sample {
        point: point_from_json(field(j, "point")?)?,
        objective: f64_field(j, "objective")?,
        constraint_values: nums_from(field(j, "constraint_values")?)?,
        feasible: bool_field(j, "feasible")?,
    })
}

fn trace_to_json(t: &Trace) -> Json {
    Json::obj(vec![
        ("technique", Json::Str(t.technique.clone())),
        ("wall_seconds", num(t.wall_seconds)),
        (
            "samples",
            Json::Arr(t.samples.iter().map(sample_to_json).collect()),
        ),
    ])
}

fn trace_from_json(j: &Json) -> Result<Trace, String> {
    let mut trace = Trace::new(str_field(j, "technique")?);
    trace.wall_seconds = f64_field(j, "wall_seconds")?;
    trace.samples = arr(field(j, "samples")?)?
        .iter()
        .map(sample_from_json)
        .collect::<Result<_, _>>()?;
    Ok(trace)
}

fn layer_eval_to_json(l: &LayerEval) -> Result<Json, String> {
    Ok(Json::obj(vec![
        ("name", Json::Str(l.name.clone())),
        ("model", Json::Str(l.model.clone())),
        ("count", Json::Num(l.count as f64)),
        ("profile", opt_to_json(&l.profile, bridge_to)?),
        ("mappable", Json::Bool(l.mappable)),
        ("latency_ms", num(l.latency_ms)),
    ]))
}

fn layer_eval_from_json(j: &Json) -> Result<LayerEval, String> {
    Ok(LayerEval {
        name: str_field(j, "name")?,
        model: str_field(j, "model")?,
        count: usize_field(j, "count")? as u64,
        profile: opt_from_json(field(j, "profile")?, bridge_from)?,
        mappable: bool_field(j, "mappable")?,
        latency_ms: f64_field(j, "latency_ms")?,
    })
}

fn evaluation_to_json(e: &Evaluation) -> Result<Json, String> {
    Ok(Json::obj(vec![
        ("objective", num(e.objective)),
        ("mappable", Json::Bool(e.mappable)),
        ("constraint_values", nums(&e.constraint_values)),
        (
            "layers",
            Json::Arr(
                e.layers
                    .iter()
                    .map(layer_eval_to_json)
                    .collect::<Result<_, _>>()?,
            ),
        ),
        ("area_mm2", num(e.area_mm2)),
        ("power_w", num(e.power_w)),
        ("energy_mj", num(e.energy_mj)),
    ]))
}

fn evaluation_from_json(j: &Json) -> Result<Evaluation, String> {
    Ok(Evaluation {
        objective: f64_field(j, "objective")?,
        mappable: bool_field(j, "mappable")?,
        constraint_values: nums_from(field(j, "constraint_values")?)?,
        layers: arr(field(j, "layers")?)?
            .iter()
            .map(layer_eval_from_json)
            .collect::<Result<_, _>>()?,
        area_mm2: f64_field(j, "area_mm2")?,
        power_w: f64_field(j, "power_w")?,
        energy_mj: f64_field(j, "energy_mj")?,
    })
}

fn attempt_to_json(a: &Attempt) -> Json {
    match a {
        Attempt::Completed {
            index,
            analyses,
            acquisitions,
            decision,
        } => Json::obj(vec![
            ("kind", Json::Str("completed".into())),
            ("index", Json::Num(*index as f64)),
            (
                "analyses",
                Json::Arr(analyses.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            (
                "acquisitions",
                Json::Arr(
                    acquisitions
                        .iter()
                        .map(|(p, i)| Json::Arr(vec![Json::Num(*p as f64), Json::Num(*i as f64)]))
                        .collect(),
                ),
            ),
            ("decision", Json::Str(decision.clone())),
        ]),
        Attempt::Failed {
            index,
            candidate,
            error,
            retries,
        } => Json::obj(vec![
            ("kind", Json::Str("failed".into())),
            ("index", Json::Num(*index as f64)),
            ("candidate", point_to_json(candidate)),
            ("error", Json::Str(error.clone())),
            ("retries", Json::Num(*retries as f64)),
        ]),
    }
}

fn attempt_from_json(j: &Json) -> Result<Attempt, String> {
    match str_field(j, "kind")?.as_str() {
        "completed" => Ok(Attempt::Completed {
            index: usize_field(j, "index")?,
            analyses: arr(field(j, "analyses")?)?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "analysis entries must be strings".to_string())
                })
                .collect::<Result<_, _>>()?,
            acquisitions: arr(field(j, "acquisitions")?)?
                .iter()
                .map(|pair| {
                    let pair = arr(pair)?;
                    if pair.len() != 2 {
                        return Err("acquisition entries must be [param, index]".to_string());
                    }
                    let p = pair[0]
                        .as_u64()
                        .ok_or("acquisition param must be a number")?;
                    let i = pair[1]
                        .as_u64()
                        .ok_or("acquisition index must be a number")?;
                    Ok((p as usize, i as usize))
                })
                .collect::<Result<_, _>>()?,
            decision: str_field(j, "decision")?,
        }),
        "failed" => Ok(Attempt::Failed {
            index: usize_field(j, "index")?,
            candidate: point_from_json(field(j, "candidate")?)?,
            error: str_field(j, "error")?,
            retries: usize_field(j, "retries")? as u32,
        }),
        other => Err(format!("unknown attempt kind `{other}`")),
    }
}

fn phase_state_to_json(ps: &PhaseState) -> Result<Json, String> {
    let mut frozen: Vec<usize> = ps.frozen.iter().copied().collect();
    frozen.sort_unstable();
    Ok(Json::obj(vec![
        ("current", point_to_json(&ps.current)),
        ("current_eval", evaluation_to_json(&ps.current_eval)?),
        (
            "frozen",
            Json::Arr(frozen.into_iter().map(|p| Json::Num(p as f64)).collect()),
        ),
        ("stalls", Json::Num(ps.stalls as f64)),
    ]))
}

fn phase_state_from_json(j: &Json) -> Result<PhaseState, String> {
    Ok(PhaseState {
        current: point_from_json(field(j, "current")?)?,
        current_eval: evaluation_from_json(field(j, "current_eval")?)?,
        frozen: arr(field(j, "frozen")?)?
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|p| p as usize)
                    .ok_or_else(|| "frozen params must be numbers".to_string())
            })
            .collect::<Result<HashSet<_>, _>>()?,
        stalls: usize_field(j, "stalls")?,
    })
}

fn state_to_json(st: &SearchState) -> Result<Json, String> {
    let mut seen: Vec<&DesignPoint> = st.seen.iter().collect();
    seen.sort_by(|a, b| a.indices().cmp(b.indices()));
    Ok(Json::obj(vec![
        ("trace", trace_to_json(&st.trace)),
        (
            "attempts",
            Json::Arr(st.attempts.iter().map(attempt_to_json).collect()),
        ),
        (
            "best",
            match &st.best {
                None => Json::Null,
                Some((p, e)) => Json::obj(vec![
                    ("point", point_to_json(p)),
                    ("evaluation", evaluation_to_json(e)?),
                ]),
            },
        ),
        (
            "seen",
            Json::Arr(seen.into_iter().map(point_to_json).collect()),
        ),
        (
            "converged_after",
            Json::Arr(
                st.converged_after
                    .iter()
                    .map(|c| Json::Num(*c as f64))
                    .collect(),
            ),
        ),
        ("phase", Json::Num(st.phase as f64)),
        ("phase_start", point_to_json(&st.phase_start)),
        (
            "phase_state",
            opt_to_json(&st.phase_state, phase_state_to_json)?,
        ),
        (
            "final_termination",
            match &st.final_termination {
                None => Json::Null,
                Some(t) => Json::Str(t.clone()),
            },
        ),
        ("wall_seconds", num(st.prior_wall_seconds)),
    ]))
}

fn state_from_json(j: &Json) -> Result<SearchState, String> {
    Ok(SearchState {
        trace: trace_from_json(field(j, "trace")?)?,
        attempts: arr(field(j, "attempts")?)?
            .iter()
            .map(attempt_from_json)
            .collect::<Result<_, _>>()?,
        best: match field(j, "best")? {
            Json::Null => None,
            b => Some((
                point_from_json(field(b, "point")?)?,
                evaluation_from_json(field(b, "evaluation")?)?,
            )),
        },
        seen: arr(field(j, "seen")?)?
            .iter()
            .map(point_from_json)
            .collect::<Result<HashSet<_>, _>>()?,
        converged_after: arr(field(j, "converged_after")?)?
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|c| c as usize)
                    .ok_or_else(|| "converged_after entries must be numbers".to_string())
            })
            .collect::<Result<_, _>>()?,
        phase: usize_field(j, "phase")?,
        phase_start: point_from_json(field(j, "phase_start")?)?,
        phase_state: opt_from_json(field(j, "phase_state")?, phase_state_from_json)?,
        final_termination: match field(j, "final_termination")? {
            Json::Null => None,
            Json::Str(s) => Some(s.clone()),
            other => return Err(format!("final_termination must be a string, got {other:?}")),
        },
        prior_wall_seconds: f64_field(j, "wall_seconds")?,
    })
}

fn caches_to_json(c: &CacheSnapshot) -> Result<Json, String> {
    // Deterministic entry order regardless of hash-map iteration: points by
    // their index vectors, layers by (shape, serialized config).
    let mut points: Vec<&(DesignPoint, Evaluation)> = c.points.iter().collect();
    points.sort_by(|(a, _), (b, _)| a.indices().cmp(b.indices()));
    let mut layers: Vec<(&LayerEntry, String)> = c
        .layers
        .iter()
        .map(|e| Ok((e, bridge_to(&e.cfg)?.to_line())))
        .collect::<Result<_, String>>()?;
    layers.sort_by(|(a, acfg), (b, bcfg)| a.shape.cmp(&b.shape).then_with(|| acfg.cmp(bcfg)));

    Ok(Json::obj(vec![
        ("unique_evaluations", Json::Num(c.unique_evaluations as f64)),
        (
            "points",
            Json::Arr(
                points
                    .into_iter()
                    .map(|(p, e)| {
                        Ok(Json::obj(vec![
                            ("point", point_to_json(p)),
                            ("evaluation", evaluation_to_json(e)?),
                        ]))
                    })
                    .collect::<Result<_, String>>()?,
            ),
        ),
        (
            "layers",
            Json::Arr(
                layers
                    .into_iter()
                    .map(|(e, _)| {
                        Ok(Json::obj(vec![
                            ("shape", bridge_to(&e.shape)?),
                            ("cfg", bridge_to(&e.cfg)?),
                            ("mapped", opt_to_json(&e.mapped, bridge_to)?),
                            ("diagnostic", opt_to_json(&e.diagnostic, bridge_to)?),
                        ]))
                    })
                    .collect::<Result<_, String>>()?,
            ),
        ),
        (
            // References into the persistent disk cache (already sorted by
            // the snapshot capture). Hex strings: record hashes are u64
            // and must round-trip exactly, which f64 JSON numbers cannot.
            "disk_layers",
            Json::Arr(
                c.disk_layers
                    .iter()
                    .map(|h| Json::Str(format!("{h:016x}")))
                    .collect(),
            ),
        ),
    ]))
}

fn caches_from_json(j: &Json) -> Result<CacheSnapshot, String> {
    // Absent in snapshots written before the disk tier existed; same
    // format version — old snapshots load with no references.
    let disk_layers = match j.get("disk_layers") {
        None | Some(Json::Null) => Vec::new(),
        Some(v) => arr(v)?
            .iter()
            .map(|h| {
                h.as_str()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| "disk_layers entries must be hex strings".to_string())
            })
            .collect::<Result<_, String>>()?,
    };
    Ok(CacheSnapshot {
        disk_layers,
        unique_evaluations: usize_field(j, "unique_evaluations")?,
        points: arr(field(j, "points")?)?
            .iter()
            .map(|entry| {
                Ok((
                    point_from_json(field(entry, "point")?)?,
                    evaluation_from_json(field(entry, "evaluation")?)?,
                ))
            })
            .collect::<Result<_, String>>()?,
        layers: arr(field(j, "layers")?)?
            .iter()
            .map(|entry| {
                Ok(LayerEntry {
                    shape: bridge_from(field(entry, "shape")?)?,
                    cfg: bridge_from(field(entry, "cfg")?)?,
                    mapped: opt_from_json(field(entry, "mapped")?, bridge_from)?,
                    diagnostic: opt_from_json(field(entry, "diagnostic")?, bridge_from)?,
                })
            })
            .collect::<Result<_, String>>()?,
    })
}

fn config_to_json(c: &DseConfig) -> Json {
    Json::obj(vec![
        ("budget", Json::Num(c.budget as f64)),
        ("top_k", Json::Num(c.top_k as f64)),
        ("threshold_scale", num(c.threshold_scale)),
        ("max_candidates", Json::Num(c.max_candidates as f64)),
        ("stall_factors", Json::Num(c.stall_factors as f64)),
        ("max_stalls", Json::Num(c.max_stalls as f64)),
        ("seed", Json::Str(c.seed.to_string())),
        (
            "aggregation",
            Json::Str(
                match c.aggregation {
                    Aggregation::Min => "min",
                    Aggregation::Max => "max",
                }
                .into(),
            ),
        ),
        ("restarts", Json::Num(c.restarts as f64)),
        ("budget_aware", Json::Bool(c.budget_aware)),
    ])
}

fn config_from_json(j: &Json) -> Result<DseConfig, String> {
    Ok(DseConfig {
        budget: usize_field(j, "budget")?,
        top_k: usize_field(j, "top_k")?,
        threshold_scale: f64_field(j, "threshold_scale")?,
        max_candidates: usize_field(j, "max_candidates")?,
        stall_factors: usize_field(j, "stall_factors")?,
        max_stalls: usize_field(j, "max_stalls")?,
        seed: str_field(j, "seed")?
            .parse::<u64>()
            .map_err(|e| format!("snapshot seed: {e}"))?,
        aggregation: match str_field(j, "aggregation")?.as_str() {
            "min" => Aggregation::Min,
            "max" => Aggregation::Max,
            other => return Err(format!("unknown aggregation `{other}`")),
        },
        restarts: usize_field(j, "restarts")?,
        budget_aware: bool_field(j, "budget_aware")?,
    })
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

/// Writes `contents` to `path` atomically: to a `.tmp` sibling first, then
/// renamed over the target, so a crash mid-write never corrupts the
/// previous snapshot.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = PathBuf::from(tmp_name);
    std::fs::write(&tmp, contents).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

fn envelope(kind: &str, body: Vec<(&str, Json)>) -> Json {
    let mut entries = vec![
        ("format", Json::Str(SNAPSHOT_FORMAT.into())),
        ("version", Json::Num(SNAPSHOT_VERSION as f64)),
        ("kind", Json::Str(kind.into())),
    ];
    entries.extend(body);
    Json::obj(entries)
}

fn open_envelope(path: &Path, expect_kind: &str) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let j = json::parse(text.trim()).map_err(|e| format!("{}: {e}", path.display()))?;
    let format = str_field(&j, "format")?;
    if format != SNAPSHOT_FORMAT {
        return Err(format!(
            "{}: not a snapshot file (format `{format}`)",
            path.display()
        ));
    }
    let version = usize_field(&j, "version")? as u64;
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "{}: unsupported snapshot version {version} (this build reads version {SNAPSHOT_VERSION})",
            path.display()
        ));
    }
    let kind = str_field(&j, "kind")?;
    if kind != expect_kind {
        return Err(format!(
            "{}: snapshot kind `{kind}` where `{expect_kind}` was expected",
            path.display()
        ));
    }
    Ok(j)
}

/// Saves an explainable-search snapshot (search state + evaluator caches).
pub(crate) fn save_search(
    path: &Path,
    config: &DseConfig,
    state: &SearchState,
    caches: &CacheSnapshot,
) -> Result<(), String> {
    let j = envelope(
        "explainable",
        vec![
            ("config", config_to_json(config)),
            ("state", state_to_json(state)?),
            ("caches", caches_to_json(caches)?),
        ],
    );
    write_atomic(path, &j.to_line())
}

/// Loads an explainable-search snapshot, verifying that it was produced by
/// a search with exactly `config` (any drift would silently break the
/// determinism contract).
pub(crate) fn load_search(
    path: &Path,
    config: &DseConfig,
) -> Result<(SearchState, CacheSnapshot), String> {
    let j = open_envelope(path, "explainable")?;
    let saved = config_from_json(field(&j, "config")?)?;
    if &saved != config {
        return Err(format!(
            "{}: snapshot was produced under a different configuration\n  snapshot: {saved:?}\n  current:  {config:?}",
            path.display()
        ));
    }
    let state =
        state_from_json(field(&j, "state")?).map_err(|e| format!("{}: {e}", path.display()))?;
    let caches =
        caches_from_json(field(&j, "caches")?).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((state, caches))
}

/// A baseline-technique snapshot: evaluator caches plus enough identity to
/// verify the resume matches (technique label and budget). Baselines resume
/// *by replay* — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineSnapshot {
    /// The technique's [`name`](crate::Trace::technique) label.
    pub technique: String,
    /// The evaluation budget the interrupted run was given.
    pub budget: usize,
    /// The evaluator caches at checkpoint time.
    pub caches: CacheSnapshot,
}

/// Saves a baseline snapshot atomically.
///
/// # Errors
///
/// Returns a description of the I/O or serialization failure.
pub fn save_baseline(path: &Path, snapshot: &BaselineSnapshot) -> Result<(), String> {
    let j = envelope(
        "baseline",
        vec![
            ("technique", Json::Str(snapshot.technique.clone())),
            ("budget", Json::Num(snapshot.budget as f64)),
            ("caches", caches_to_json(&snapshot.caches)?),
        ],
    );
    write_atomic(path, &j.to_line())
}

/// Loads a baseline snapshot.
///
/// # Errors
///
/// Returns a description of the I/O, parse, or schema failure (including
/// the path), e.g. an `"explainable"` snapshot passed to a baseline resume.
pub fn load_baseline(path: &Path) -> Result<BaselineSnapshot, String> {
    let j = open_envelope(path, "baseline")?;
    Ok(BaselineSnapshot {
        technique: str_field(&j, "technique")?,
        budget: usize_field(&j, "budget")?,
        caches: caches_from_json(field(&j, "caches")?)
            .map_err(|e| format!("{}: {e}", path.display()))?,
    })
}

// ---------------------------------------------------------------------------
// Mid-run checkpointing for black-box techniques
// ---------------------------------------------------------------------------

/// An [`Evaluator`] decorator that saves a [`BaselineSnapshot`] after every
/// `every` unique evaluations. Black-box baselines drive their evaluator
/// through the [`Evaluator`] trait only, so wrapping it is the one seam
/// where checkpoints can be taken without touching the techniques.
pub struct CheckpointingEvaluator<E> {
    inner: E,
    path: PathBuf,
    every: usize,
    technique: String,
    budget: usize,
    telemetry: Collector,
    last_saved: Mutex<usize>,
}

impl<E: Evaluator> CheckpointingEvaluator<E> {
    /// Wraps `inner`, snapshotting to `path` every `every` unique
    /// evaluations (`every` is clamped to at least 1).
    pub fn new(
        inner: E,
        path: impl Into<PathBuf>,
        every: usize,
        technique: impl Into<String>,
        budget: usize,
        telemetry: Collector,
    ) -> Self {
        CheckpointingEvaluator {
            inner,
            path: path.into(),
            every: every.max(1),
            technique: technique.into(),
            budget,
            telemetry,
            last_saved: Mutex::new(0),
        }
    }

    /// Saves a snapshot right now (also called automatically every `every`
    /// unique evaluations). Failures are reported through telemetry
    /// (`checkpoint/save_failures` + a warning), never panicked on: losing
    /// a checkpoint must not kill the run it exists to protect.
    pub fn save(&self) {
        let snapshot = BaselineSnapshot {
            technique: self.technique.clone(),
            budget: self.budget,
            caches: self.inner.cache_snapshot(),
        };
        match save_baseline(&self.path, &snapshot) {
            Ok(()) => self.telemetry.counter("checkpoint/saves", 1),
            Err(e) => {
                self.telemetry.counter("checkpoint/save_failures", 1);
                self.telemetry
                    .log(Level::Warn, &format!("checkpoint save failed: {e}"));
            }
        }
    }

    fn maybe_save(&self) {
        let uniques = self.inner.unique_evaluations();
        {
            let mut last = self.last_saved.lock().expect("checkpoint lock poisoned");
            if uniques < *last + self.every {
                return;
            }
            *last = uniques;
        }
        self.save();
    }
}

impl<E: Evaluator> Evaluator for CheckpointingEvaluator<E> {
    fn evaluate(&self, point: &DesignPoint) -> Evaluation {
        let e = self.inner.evaluate(point);
        self.maybe_save();
        e
    }

    fn evaluate_batch(&self, points: &[DesignPoint]) -> Vec<Evaluation> {
        let e = self.inner.evaluate_batch(points);
        self.maybe_save();
        e
    }

    fn try_evaluate(&self, point: &DesignPoint) -> Result<Evaluation, crate::EvalFault> {
        let e = self.inner.try_evaluate(point);
        self.maybe_save();
        e
    }

    fn try_evaluate_batch(
        &self,
        points: &[DesignPoint],
    ) -> Vec<Result<Evaluation, crate::EvalFault>> {
        let e = self.inner.try_evaluate_batch(points);
        self.maybe_save();
        e
    }

    fn space(&self) -> &crate::space::DesignSpace {
        self.inner.space()
    }

    fn constraints(&self) -> &[crate::cost::Constraint] {
        self.inner.constraints()
    }

    fn unique_evaluations(&self) -> usize {
        self.inner.unique_evaluations()
    }

    fn decode(&self, point: &DesignPoint) -> AcceleratorConfig {
        self.inner.decode(point)
    }

    fn cache_snapshot(&self) -> CacheSnapshot {
        self.inner.cache_snapshot()
    }

    fn restore_caches(&self, snapshot: &CacheSnapshot) {
        self.inner.restore_caches(snapshot)
    }

    fn cache_stats(&self) -> crate::evaluate::CacheStats {
        self.inner.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "edse-checkpoint-test-{}-{tag}-{n}.json",
            std::process::id()
        ))
    }

    #[test]
    fn num_codec_round_trips_non_finite_values() {
        for v in [0.0, -1.5, 1e300, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(num_from(&num(v)).unwrap(), v);
        }
        assert!(num_from(&num(f64::NAN)).unwrap().is_nan());
        // And through a full serialize/parse cycle.
        let line = Json::Arr(vec![num(f64::INFINITY), num(2.5)]).to_line();
        let back = json::parse(&line).unwrap();
        assert_eq!(num_from(&back.as_arr().unwrap()[0]).unwrap(), f64::INFINITY);
    }

    #[test]
    fn evaluation_round_trips_with_unmappable_layers() {
        let e = Evaluation {
            objective: f64::INFINITY,
            mappable: false,
            constraint_values: vec![12.5, f64::INFINITY],
            layers: vec![LayerEval {
                name: "conv1".into(),
                model: "toy".into(),
                count: 3,
                profile: None,
                mappable: false,
                latency_ms: f64::INFINITY,
            }],
            area_mm2: 12.5,
            power_w: 1.0,
            energy_mj: 0.0,
        };
        let j = evaluation_to_json(&e).unwrap();
        let line = j.to_line();
        let back = evaluation_from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn baseline_snapshot_round_trips_and_rejects_mismatches() {
        let snap = BaselineSnapshot {
            technique: "random-fixdf".into(),
            budget: 250,
            caches: CacheSnapshot {
                unique_evaluations: 1,
                points: vec![(
                    DesignPoint::new(vec![0, 2, 1]),
                    Evaluation {
                        objective: 4.0,
                        mappable: true,
                        constraint_values: vec![1.0],
                        layers: vec![],
                        area_mm2: 1.0,
                        power_w: 0.5,
                        energy_mj: 0.1,
                    },
                )],
                layers: vec![],
                disk_layers: vec![3, u64::MAX],
            },
        };
        let path = temp_path("baseline");
        save_baseline(&path, &snap).unwrap();
        assert_eq!(load_baseline(&path).unwrap(), snap);
        // The tmp sibling is gone after the rename.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        // An explainable loader must reject a baseline snapshot.
        let err = load_search(&path, &DseConfig::default()).unwrap_err();
        assert!(err.contains("kind `baseline`"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_and_unversioned_snapshots_are_rejected_with_the_path() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        let err = load_baseline(&path).unwrap_err();
        assert!(err.contains(path.to_str().unwrap()), "{err}");

        std::fs::write(
            &path,
            r#"{"format":"edse-snapshot","version":99,"kind":"baseline"}"#,
        )
        .unwrap();
        let err = load_baseline(&path).unwrap_err();
        assert!(err.contains("unsupported snapshot version 99"), "{err}");

        std::fs::write(&path, r#"{"format":"other","version":1,"kind":"baseline"}"#).unwrap();
        let err = load_baseline(&path).unwrap_err();
        assert!(err.contains("not a snapshot file"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn config_fingerprint_detects_drift() {
        let j = config_to_json(&DseConfig::default());
        let back = config_from_json(&j).unwrap();
        assert_eq!(back, DseConfig::default());
        let changed = DseConfig {
            seed: 7,
            ..DseConfig::default()
        };
        assert_ne!(back, changed);
    }
}
