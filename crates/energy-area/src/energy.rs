//! Per-access energy table (Accelergy's "energy per data access" output).

use crate::tech::Tech;
use crate::AcceleratorResources;
use serde::{Deserialize, Serialize};

/// Per-access energies (picojoules) for one accelerator configuration.
///
/// The execution model multiplies these with access counts to obtain total
/// inference energy; the power model uses them for peak single-cycle energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTable {
    /// One int16 multiply-accumulate.
    pub mac_pj: f64,
    /// Register-file access, per byte.
    pub rf_pj_per_byte: f64,
    /// Shared scratchpad access, per byte.
    pub spm_pj_per_byte: f64,
    /// NoC transport from the scratchpad to a PE group, per byte.
    pub noc_pj_per_byte: f64,
    /// Off-chip DRAM access, per byte.
    pub dram_pj_per_byte: f64,
}

impl EnergyTable {
    /// Evaluates the energy model for a configuration.
    ///
    /// * RF energy grows linearly with each capacity doubling past 64 B
    ///   (wider decode + longer bitlines in a small array).
    /// * SPM energy follows a CACTI-like `(capacity/64kB)^0.5` law.
    /// * NoC energy grows with `sqrt(PEs)` (average wire length across the
    ///   array).
    pub fn compute(tech: &Tech, r: &AcceleratorResources) -> Self {
        let rf_doublings = ((r.l1_bytes.max(1) as f64) / 64.0).log2().max(0.0);
        let rf_pj_per_byte =
            tech.rf_base_pj_per_byte * (1.0 + tech.rf_growth_per_doubling * rf_doublings);
        let spm_ratio = (r.l2_bytes.max(1) as f64) / (64.0 * 1024.0);
        let spm_pj_per_byte =
            tech.spm_base_pj_per_byte * spm_ratio.powf(tech.spm_capacity_exponent).max(1.0);
        let noc_pj_per_byte = tech.noc_base_pj_per_byte * ((r.pes.max(1) as f64) / 64.0).sqrt();
        Self {
            mac_pj: tech.mac_pj,
            rf_pj_per_byte,
            spm_pj_per_byte,
            noc_pj_per_byte,
            dram_pj_per_byte: tech.dram_pj_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(l1: u64, l2: u64, pes: u64) -> AcceleratorResources {
        AcceleratorResources {
            pes,
            l1_bytes: l1,
            l2_bytes: l2,
            noc_width_bits: 32,
            noc_phys_links: [4; 4],
            offchip_bw_mbps: 8192,
            freq_mhz: 500,
        }
    }

    #[test]
    fn larger_memories_cost_more_per_access() {
        let t = Tech::n45();
        let small = EnergyTable::compute(&t, &cfg(64, 64 * 1024, 64));
        let large = EnergyTable::compute(&t, &cfg(1024, 4096 * 1024, 64));
        assert!(large.rf_pj_per_byte > small.rf_pj_per_byte);
        assert!(large.spm_pj_per_byte > small.spm_pj_per_byte);
    }

    #[test]
    fn small_memories_do_not_go_below_base() {
        let t = Tech::n45();
        let tiny = EnergyTable::compute(&t, &cfg(8, 1024, 64));
        assert!(tiny.rf_pj_per_byte >= t.rf_base_pj_per_byte);
        assert!(tiny.spm_pj_per_byte >= t.spm_base_pj_per_byte);
    }

    #[test]
    fn noc_energy_scales_with_array_size() {
        let t = Tech::n45();
        let small = EnergyTable::compute(&t, &cfg(64, 64 * 1024, 64));
        let large = EnergyTable::compute(&t, &cfg(64, 64 * 1024, 4096));
        assert!((large.noc_pj_per_byte / small.noc_pj_per_byte - 8.0).abs() < 1e-9);
    }

    #[test]
    fn hierarchy_preserved_for_all_configs() {
        let t = Tech::n45();
        for (l1, l2, pes) in [(8, 64 << 10, 64), (1024, 4096 << 10, 4096)] {
            let e = EnergyTable::compute(&t, &cfg(l1, l2, pes));
            assert!(e.rf_pj_per_byte < e.spm_pj_per_byte);
            assert!(e.spm_pj_per_byte < e.dram_pj_per_byte);
        }
    }
}
