//! Silicon area model (CACTI-style SRAM density plus datapath estimates).

use crate::tech::Tech;
use crate::AcceleratorResources;
use serde::{Deserialize, Serialize};

/// Per-component area estimate in mm^2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// PE array: MAC datapaths, control, and per-PE register files.
    pub pe_array_mm2: f64,
    /// Shared scratchpad SRAM.
    pub spm_mm2: f64,
    /// All four operand NoCs (wires/muxes proportional to links x width).
    pub noc_mm2: f64,
    /// DMA engine and off-chip PHY/controller.
    pub dma_mm2: f64,
}

impl AreaBreakdown {
    /// Evaluates the area model for a configuration.
    pub fn compute(tech: &Tech, r: &AcceleratorResources) -> Self {
        let rf_per_pe = r.l1_bytes as f64 * tech.rf_area_mm2_per_byte;
        let pe_array_mm2 = r.pes as f64 * (tech.mac_area_mm2 + tech.pe_ctrl_area_mm2 + rf_per_pe);
        let spm_mm2 = r.l2_bytes as f64 * tech.spm_area_mm2_per_byte;
        let link_bits: f64 = r
            .noc_phys_links
            .iter()
            .map(|&l| l as f64 * r.noc_width_bits as f64)
            .sum();
        let noc_mm2 = link_bits * tech.noc_area_mm2_per_link_bit;
        let dma_mm2 =
            tech.dma_base_area_mm2 + r.offchip_bytes_per_cycle() * tech.dma_area_mm2_per_byte_cycle;
        Self {
            pe_array_mm2,
            spm_mm2,
            noc_mm2,
            dma_mm2,
        }
    }

    /// Total die area in mm^2.
    pub fn total_mm2(&self) -> f64 {
        self.pe_array_mm2 + self.spm_mm2 + self.noc_mm2 + self.dma_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> AcceleratorResources {
        AcceleratorResources {
            pes: 256,
            l1_bytes: 64,
            l2_bytes: 256 * 1024,
            noc_width_bits: 32,
            noc_phys_links: [8, 8, 8, 8],
            offchip_bw_mbps: 8192,
            freq_mhz: 500,
        }
    }

    #[test]
    fn area_monotone_in_every_resource() {
        let t = Tech::n45();
        let b = base();
        let total = t.area(&b).total_mm2();
        for grow in [
            AcceleratorResources { pes: 512, ..b },
            AcceleratorResources { l1_bytes: 128, ..b },
            AcceleratorResources {
                l2_bytes: 512 * 1024,
                ..b
            },
            AcceleratorResources {
                noc_width_bits: 64,
                ..b
            },
            AcceleratorResources {
                noc_phys_links: [16; 4],
                ..b
            },
            AcceleratorResources {
                offchip_bw_mbps: 16384,
                ..b
            },
        ] {
            assert!(t.area(&grow).total_mm2() > total, "{grow:?}");
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let t = Tech::n45();
        let a = t.area(&base());
        let sum = a.pe_array_mm2 + a.spm_mm2 + a.noc_mm2 + a.dma_mm2;
        assert!((sum - a.total_mm2()).abs() < 1e-12);
    }

    #[test]
    fn noc_area_counts_all_four_operand_networks() {
        let t = Tech::n45();
        let one = AcceleratorResources {
            noc_phys_links: [8, 0, 0, 0],
            ..base()
        };
        let four = AcceleratorResources {
            noc_phys_links: [2, 2, 2, 2],
            ..base()
        };
        // Same total link-bits => same NoC area.
        assert!((t.area(&one).noc_mm2 - t.area(&four).noc_mm2).abs() < 1e-12);
    }

    #[test]
    fn dma_area_has_a_fixed_floor() {
        let t = Tech::n45();
        let tiny = AcceleratorResources {
            offchip_bw_mbps: 500,
            ..base()
        };
        assert!(t.area(&tiny).dma_mm2 >= t.dma_base_area_mm2);
    }

    #[test]
    fn pe_array_dominates_compute_heavy_configs() {
        let t = Tech::n45();
        let big_pes = AcceleratorResources {
            pes: 4096,
            ..base()
        };
        let a = t.area(&big_pes);
        assert!(a.pe_array_mm2 > a.spm_mm2 + a.noc_mm2 + a.dma_mm2);
    }
}
