//! Technology node coefficients and the top-level model entry points.

use crate::area::AreaBreakdown;
use crate::energy::EnergyTable;
use crate::power::PowerBreakdown;
use crate::AcceleratorResources;
use serde::{Deserialize, Serialize};

/// Coefficients of one technology node.
///
/// All energies are picojoules, all areas square millimetres. The defaults
/// ([`Tech::n45`]) are anchored to published 45 nm numbers; every formula in
/// [`crate::area`], [`crate::energy`] and [`crate::power`] reads these
/// coefficients, so alternative nodes can be modelled by scaling them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tech {
    /// Node name, informational only.
    pub node_nm: u32,
    /// Energy of one int16 multiply-accumulate (pJ).
    pub mac_pj: f64,
    /// Register-file access energy per byte at the reference 64 B size (pJ/B).
    pub rf_base_pj_per_byte: f64,
    /// RF energy growth per doubling beyond the 64 B reference (fraction).
    pub rf_growth_per_doubling: f64,
    /// Scratchpad access energy per byte at the reference 64 kB size (pJ/B).
    pub spm_base_pj_per_byte: f64,
    /// SPM energy scaling exponent with capacity (CACTI-like sqrt => 0.5).
    pub spm_capacity_exponent: f64,
    /// NoC transport energy per byte for an 8x8 array (pJ/B); grows with
    /// the square root of the PE count (wire length).
    pub noc_base_pj_per_byte: f64,
    /// Off-chip (LPDDR4-class) access energy per byte (pJ/B).
    pub dram_pj_per_byte: f64,
    /// Area of one int16 MAC datapath (mm^2).
    pub mac_area_mm2: f64,
    /// Per-PE control/pipeline overhead area (mm^2).
    pub pe_ctrl_area_mm2: f64,
    /// Register-file area per byte (mm^2/B) — small arrays, low density.
    pub rf_area_mm2_per_byte: f64,
    /// Scratchpad SRAM area per byte (mm^2/B).
    pub spm_area_mm2_per_byte: f64,
    /// NoC area per link-bit of width (mm^2) — wires, muxes, repeaters.
    pub noc_area_mm2_per_link_bit: f64,
    /// Fixed DMA-engine/controller area (mm^2).
    pub dma_base_area_mm2: f64,
    /// PHY/controller area per byte-per-cycle of off-chip bandwidth (mm^2).
    pub dma_area_mm2_per_byte_cycle: f64,
    /// RF accesses charged per MAC when computing peak PE power (reads of
    /// two source operands plus a partial-sum read-modify-write ~ 3).
    pub rf_accesses_per_mac: f64,
    /// Static/leakage power as a fraction of peak dynamic power.
    pub static_fraction: f64,
}

impl Tech {
    /// The 45 nm node used throughout the paper's evaluation.
    ///
    /// Anchors: a full int16 PE costs ~3.5 pJ/MAC (datapath plus pipeline,
    /// clocking and control — Eyeriss reports 5-10 pJ/MAC all-in at 65 nm);
    /// the SRAM/DRAM ladder follows Horowitz (ISSCC'14) and the Eyeriss
    /// relative-cost table; SRAM/PE densities follow CACTI 6.0 at 45 nm
    /// with array overheads; LPDDR4-class off-chip energy (~30 pJ/B) as
    /// appropriate for an edge device.
    pub fn n45() -> Self {
        Self {
            node_nm: 45,
            mac_pj: 3.5,
            rf_base_pj_per_byte: 0.10,
            rf_growth_per_doubling: 0.12,
            spm_base_pj_per_byte: 0.70,
            spm_capacity_exponent: 0.5,
            noc_base_pj_per_byte: 0.10,
            dram_pj_per_byte: 30.0,
            mac_area_mm2: 0.0030,
            pe_ctrl_area_mm2: 0.0015,
            rf_area_mm2_per_byte: 24.0e-6,
            spm_area_mm2_per_byte: 6.0e-6,
            noc_area_mm2_per_link_bit: 0.60e-6,
            dma_base_area_mm2: 0.5,
            dma_area_mm2_per_byte_cycle: 0.01,
            rf_accesses_per_mac: 3.0,
            static_fraction: 0.10,
        }
    }

    /// Computes the area breakdown for a configuration.
    pub fn area(&self, r: &AcceleratorResources) -> AreaBreakdown {
        AreaBreakdown::compute(self, r)
    }

    /// Computes the per-access energy table for a configuration.
    pub fn energy_table(&self, r: &AcceleratorResources) -> EnergyTable {
        EnergyTable::compute(self, r)
    }

    /// Computes peak (max single-cycle energy x frequency) power.
    pub fn max_power(&self, r: &AcceleratorResources) -> PowerBreakdown {
        PowerBreakdown::compute(self, r)
    }
}

impl Default for Tech {
    fn default() -> Self {
        Self::n45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_45nm() {
        assert_eq!(Tech::default().node_nm, 45);
    }

    #[test]
    fn energy_ladder_ordering() {
        // The classic hierarchy: RF < NoC-ish < SPM << DRAM per byte.
        let t = Tech::n45();
        assert!(t.rf_base_pj_per_byte < t.spm_base_pj_per_byte);
        assert!(t.spm_base_pj_per_byte < t.dram_pj_per_byte);
    }
}
