//! Peak-power model: maximum energy consumable by all components in one
//! cycle, times frequency (the paper's Accelergy-based definition), plus a
//! static fraction.

use crate::energy::EnergyTable;
use crate::tech::Tech;
use crate::AcceleratorResources;
use serde::{Deserialize, Serialize};

/// Per-component peak power in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// PE array at full MAC + RF activity.
    pub pe_array_w: f64,
    /// Scratchpad serving all NoCs at full width.
    pub spm_w: f64,
    /// NoC transport at full width.
    pub noc_w: f64,
    /// Off-chip interface at full bandwidth.
    pub dram_w: f64,
    /// Leakage (a fixed fraction of peak dynamic power).
    pub static_w: f64,
}

impl PowerBreakdown {
    /// Evaluates the peak power model for a configuration.
    ///
    /// Per cycle, at full activity:
    /// * every PE performs one MAC and `rf_accesses_per_mac` two-byte RF
    ///   accesses;
    /// * each NoC moves `width/8` bytes out of the scratchpad (one SPM read
    ///   or write plus one NoC transport per byte);
    /// * the DMA moves `BW/freq` bytes across the off-chip interface.
    pub fn compute(tech: &Tech, r: &AcceleratorResources) -> Self {
        let e = EnergyTable::compute(tech, r);
        let freq_hz = r.freq_mhz as f64 * 1e6;
        let pj_to_w = |pj_per_cycle: f64| pj_per_cycle * 1e-12 * freq_hz;

        let elem_bytes = 2.0; // int16 datapath
        let pe_pj =
            r.pes as f64 * (e.mac_pj + tech.rf_accesses_per_mac * elem_bytes * e.rf_pj_per_byte);
        let noc_bytes = r.noc_bytes_per_cycle();
        let spm_pj = noc_bytes * e.spm_pj_per_byte;
        let noc_pj = noc_bytes * e.noc_pj_per_byte;
        let dram_pj = r.offchip_bytes_per_cycle() * e.dram_pj_per_byte;

        let dynamic = pj_to_w(pe_pj) + pj_to_w(spm_pj) + pj_to_w(noc_pj) + pj_to_w(dram_pj);
        Self {
            pe_array_w: pj_to_w(pe_pj),
            spm_w: pj_to_w(spm_pj),
            noc_w: pj_to_w(noc_pj),
            dram_w: pj_to_w(dram_pj),
            static_w: dynamic * tech.static_fraction,
        }
    }

    /// Total peak power in watts.
    pub fn total_w(&self) -> f64 {
        self.pe_array_w + self.spm_w + self.noc_w + self.dram_w + self.static_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pes: u64, bw: u64) -> AcceleratorResources {
        AcceleratorResources {
            pes,
            l1_bytes: 64,
            l2_bytes: 256 * 1024,
            noc_width_bits: 32,
            noc_phys_links: [4; 4],
            offchip_bw_mbps: bw,
            freq_mhz: 500,
        }
    }

    #[test]
    fn power_scales_with_pes() {
        let t = Tech::n45();
        let p1 = t.max_power(&cfg(256, 8192));
        let p2 = t.max_power(&cfg(1024, 8192));
        assert!(
            (p2.pe_array_w / p1.pe_array_w - 4.0).abs() < 1e-9,
            "PE power scales linearly"
        );
        assert!(p2.total_w() > 2.0 * p1.total_w());
    }

    #[test]
    fn bandwidth_contributes_measurably() {
        let t = Tech::n45();
        let lo = t.max_power(&cfg(256, 1024));
        let hi = t.max_power(&cfg(256, 51_200));
        assert!(hi.dram_w > 10.0 * lo.dram_w);
        assert!(hi.total_w() > lo.total_w());
    }

    #[test]
    fn mid_range_fits_edge_budget() {
        // A representative efficient edge design (1024 PEs) must fit 4 W,
        // mirroring the paper's feasible region.
        let t = Tech::n45();
        let p = t.max_power(&cfg(1024, 8192));
        assert!(p.total_w() < 4.0, "got {} W", p.total_w());
    }

    #[test]
    fn breakdown_sums_to_total() {
        let t = Tech::n45();
        let p = t.max_power(&cfg(512, 8192));
        let sum = p.pe_array_w + p.spm_w + p.noc_w + p.dram_w + p.static_w;
        assert!((sum - p.total_w()).abs() < 1e-12);
    }

    #[test]
    fn wider_nocs_draw_more_power() {
        let t = Tech::n45();
        let narrow = t.max_power(&AcceleratorResources {
            noc_width_bits: 16,
            ..cfg(256, 8192)
        });
        let wide = t.max_power(&AcceleratorResources {
            noc_width_bits: 256,
            ..cfg(256, 8192)
        });
        assert!(wide.noc_w > narrow.noc_w);
        assert!(wide.spm_w > narrow.spm_w, "SPM serves the NoCs");
    }

    #[test]
    fn static_power_is_fraction_of_dynamic() {
        let t = Tech::n45();
        let p = t.max_power(&cfg(512, 8192));
        let dynamic = p.pe_array_w + p.spm_w + p.noc_w + p.dram_w;
        assert!((p.static_w - dynamic * t.static_fraction).abs() < 1e-12);
    }
}
