#![warn(missing_docs)]
//! Technology-level area, energy, and power models for spatial DNN
//! accelerators, in the spirit of Accelergy with CACTI/Aladdin plugins.
//!
//! The paper uses Accelergy to obtain total area, energy-per-access, and
//! maximum power at a 45 nm node; maximum power is "the maximum energy
//! consumed by all design components in a single cycle" times frequency.
//! This crate reproduces that interface with documented analytical scaling
//! formulas anchored to published 45 nm numbers (Horowitz ISSCC'14 energy
//! table, Eyeriss ISCA'16 relative access costs, CACTI SRAM densities).
//! Absolute calibration targets the paper's constraint regime: the largest
//! Table-1 configuration must exceed the 75 mm^2 / 4 W edge budgets while
//! mid-range configurations fit comfortably.
//!
//! # Example
//!
//! ```
//! use energy_area::{AcceleratorResources, Tech};
//!
//! let tech = Tech::n45();
//! let small = AcceleratorResources {
//!     pes: 256,
//!     l1_bytes: 128,
//!     l2_bytes: 128 * 1024,
//!     noc_width_bits: 32,
//!     noc_phys_links: [4, 4, 4, 4],
//!     offchip_bw_mbps: 8192,
//!     freq_mhz: 500,
//! };
//! let area = tech.area(&small);
//! let power = tech.max_power(&small);
//! assert!(area.total_mm2() < 75.0);
//! assert!(power.total_w() < 4.0);
//! ```

pub mod area;
pub mod energy;
pub mod power;
pub mod tech;

pub use area::AreaBreakdown;
pub use energy::EnergyTable;
pub use power::PowerBreakdown;
pub use tech::Tech;

use serde::{Deserialize, Serialize};

/// Physical resources of one accelerator configuration, as consumed by the
/// technology model. This mirrors the hardware half of the paper's Table 1
/// design space (virtual unicast links are time-multiplexing and add no
/// physical resources beyond small control, so they do not appear here).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorResources {
    /// Number of processing elements (each one scalar int16 MAC + RF).
    pub pes: u64,
    /// Register-file (L1) bytes per PE.
    pub l1_bytes: u64,
    /// Shared scratchpad (L2) bytes.
    pub l2_bytes: u64,
    /// Data width of each operand NoC in bits.
    pub noc_width_bits: u64,
    /// Physical unicast links per operand NoC (input, weight, output-read,
    /// output-write).
    pub noc_phys_links: [u64; 4],
    /// Off-chip bandwidth in megabytes per second.
    pub offchip_bw_mbps: u64,
    /// Clock frequency in MHz.
    pub freq_mhz: u64,
}

impl AcceleratorResources {
    /// Off-chip bytes transferred per accelerator cycle at full bandwidth.
    pub fn offchip_bytes_per_cycle(&self) -> f64 {
        self.offchip_bw_mbps as f64 / self.freq_mhz as f64
    }

    /// Total on-chip NoC payload bytes movable per cycle (all four NoCs).
    pub fn noc_bytes_per_cycle(&self) -> f64 {
        4.0 * self.noc_width_bits as f64 / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_table1() -> AcceleratorResources {
        AcceleratorResources {
            pes: 4096,
            l1_bytes: 1024,
            l2_bytes: 4096 * 1024,
            noc_width_bits: 256,
            noc_phys_links: [4096; 4],
            offchip_bw_mbps: 51_200,
            freq_mhz: 500,
        }
    }

    fn min_table1() -> AcceleratorResources {
        AcceleratorResources {
            pes: 64,
            l1_bytes: 8,
            l2_bytes: 64 * 1024,
            noc_width_bits: 16,
            noc_phys_links: [1, 1, 1, 1],
            offchip_bw_mbps: 1024,
            freq_mhz: 500,
        }
    }

    #[test]
    fn constraint_regime_matches_paper() {
        let tech = Tech::n45();
        // The largest configuration must violate the edge budgets...
        let max = max_table1();
        assert!(
            tech.area(&max).total_mm2() > 75.0 || tech.max_power(&max).total_w() > 4.0,
            "largest Table-1 point should exceed at least one edge budget"
        );
        // ...and the smallest must fit with ample margin.
        let min = min_table1();
        assert!(tech.area(&min).total_mm2() < 10.0);
        assert!(tech.max_power(&min).total_w() < 1.0);
    }

    #[test]
    fn bandwidth_conversions() {
        let r = min_table1();
        assert!((r.offchip_bytes_per_cycle() - 2.048).abs() < 1e-12);
        assert!((r.noc_bytes_per_cycle() - 8.0).abs() < 1e-12);
    }
}
