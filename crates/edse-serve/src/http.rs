//! A deliberately minimal HTTP/1.1 layer over `std::net` — just enough
//! protocol for the service's JSON API: request-line + header parsing,
//! `Content-Length` bodies, fixed-length responses, and chunked
//! transfer-encoding for the event stream. No TLS, no keep-alive
//! (`Connection: close` on every response), no dependencies.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body the server will buffer (a [`JobSpec`] is a few
/// hundred bytes; this bound exists so a stray client cannot balloon
/// memory).
///
/// [`JobSpec`]: edse_core::JobSpec
const MAX_BODY: usize = 1 << 20;

/// One parsed request: method, path (query strings are not used by this
/// API and are kept attached), and body.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `"GET"`.
    pub method: String,
    /// Request path, e.g. `"/jobs/3/events"`.
    pub path: String,
    /// Raw request body (empty when there was none).
    pub body: Vec<u8>,
}

/// Reads and parses one request from the stream. Returns `None` on a
/// malformed or oversized request (the caller answers 400 and closes).
pub fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_uppercase();
    let path = parts.next()?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    if content_length > MAX_BODY {
        return None;
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).ok()?;
    }
    Some(Request { method, path, body })
}

/// Writes a complete fixed-length response and flushes.
pub fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Shorthand for a JSON response.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) {
    respond(stream, status, "application/json", body);
}

/// Starts a chunked response (for the JSONL event stream). Follow with
/// [`write_chunk`] per line and [`end_chunks`] to terminate.
pub fn start_chunked(stream: &mut TcpStream, content_type: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Writes one chunk. An error means the client hung up; the caller stops
/// streaming.
pub fn write_chunk(stream: &mut TcpStream, data: &str) -> std::io::Result<()> {
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data.as_bytes())?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response.
pub fn end_chunks(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}
