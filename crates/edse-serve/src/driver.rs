//! [`JobDriver`]: the uniform stepwise interface the scheduler drives.
//!
//! The service hosts two kinds of search — the explainable DSE
//! ([`edse_core::SearchDriver`]) and the black-box baselines
//! ([`baselines::BaselineDriver`]) — behind one object-safe trait, so the
//! worker pool interleaves them without caring which is which. Both
//! honor the same [`CancelToken`]/[`StepOutcome`] protocol: one `step` is
//! at most one evaluation batch, which is the service's cancellation and
//! fairness granularity.

use baselines::{
    BaselineDriver, BayesianOpt, ConfuciuxRl, DseTechnique, GeneticAlgorithm, GridSearch,
    HyperMapperLike, RandomSearch, SimulatedAnnealing,
};
use bench::toy::{single_layer_model, toy_space};
use edse_core::bottleneck::dnn::LayerCtx;
use edse_core::bottleneck::dnn_latency_model;
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CacheStats, CodesignEvaluator, EvalEngine, Evaluator};
use edse_core::session::DnnCtxFn;
use edse_core::space::{datacenter_space, edge_space, DesignSpace};
use edse_core::{CancelToken, DiskCache, JobSpec, SearchDriver, SearchSession, StepOutcome};
use edse_telemetry::json::Json;
use edse_telemetry::Collector;
use mapper::{FixedMapper, LinearMapper, MappingOptimizer, RandomMapper};
use std::sync::Arc;
use workloads::model::DnnModel;
use workloads::zoo;

/// The evaluator every hosted job runs against: the shared codesign
/// evaluator over a boxed mapper (the mapper kind is chosen per job).
pub type JobEvaluator = CodesignEvaluator<Box<dyn MappingOptimizer>>;

/// One hosted search behind a uniform stepwise interface. `Send` so the
/// scheduler can lease a parked driver to whichever worker thread is
/// free.
pub trait JobDriver: Send {
    /// Advances by at most one evaluation batch.
    fn step(&mut self) -> StepOutcome;

    /// Unique evaluations performed so far.
    fn evaluations(&self) -> usize;

    /// Objective of the incumbent (best feasible design) so far.
    fn best_objective(&self) -> Option<f64>;

    /// Cache-tier statistics of the job's evaluator (includes the
    /// disk-degradation error, if any).
    fn cache_stats(&self) -> CacheStats;

    /// Forces a snapshot now (no-op without a checkpoint path). Returns
    /// whether a save was attempted.
    fn snapshot(&mut self) -> bool;

    /// Consumes the driver and renders the final result summary.
    fn finish(self: Box<Self>) -> Json;
}

/// Explainable jobs: a thin [`JobDriver`] shim over [`SearchDriver`].
struct ExplainableJob {
    driver: SearchDriver<LayerCtx, JobEvaluator, DnnCtxFn<JobEvaluator>>,
}

impl JobDriver for ExplainableJob {
    fn step(&mut self) -> StepOutcome {
        self.driver.step()
    }

    fn evaluations(&self) -> usize {
        self.driver.evaluator().unique_evaluations()
    }

    fn best_objective(&self) -> Option<f64> {
        self.driver.best_objective()
    }

    fn cache_stats(&self) -> CacheStats {
        self.driver.evaluator().cache_stats()
    }

    fn snapshot(&mut self) -> bool {
        self.driver.snapshot()
    }

    fn finish(self: Box<Self>) -> Json {
        let result = self.driver.finish();
        Json::obj(vec![
            ("technique", Json::Str("explainable".to_string())),
            (
                "evaluations",
                Json::Num(result.trace().evaluations() as f64),
            ),
            (
                "best_objective",
                result.best_objective().map(Json::Num).unwrap_or(Json::Null),
            ),
            ("attempts", Json::Num(result.attempts().len() as f64)),
            (
                "converged_after",
                Json::Arr(
                    result
                        .converged_after()
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
            ("termination", Json::Str(result.termination().to_string())),
        ])
    }
}

/// The boxed technique factory baseline jobs replay from.
type BoxedFactory = Box<dyn Fn() -> Box<dyn DseTechnique> + Send>;

/// Baseline jobs: a [`JobDriver`] shim over [`BaselineDriver`] that also
/// remembers the terminal outcome (the trace itself does not say whether
/// it was cancelled).
struct BaselineJob {
    driver: BaselineDriver<JobEvaluator, BoxedFactory>,
    technique: String,
    last: Option<StepOutcome>,
}

impl JobDriver for BaselineJob {
    fn step(&mut self) -> StepOutcome {
        let outcome = self.driver.step();
        self.last = Some(outcome);
        outcome
    }

    fn evaluations(&self) -> usize {
        self.driver.evaluations()
    }

    fn best_objective(&self) -> Option<f64> {
        self.driver.best_objective()
    }

    fn cache_stats(&self) -> CacheStats {
        self.driver.evaluator().cache_stats()
    }

    fn snapshot(&mut self) -> bool {
        self.driver.snapshot()
    }

    fn finish(self: Box<Self>) -> Json {
        let termination = match self.last {
            Some(StepOutcome::Cancelled) => "cancelled",
            _ => "budget",
        };
        let trace = self.driver.finish();
        Json::obj(vec![
            ("technique", Json::Str(self.technique.clone())),
            ("evaluations", Json::Num(trace.evaluations() as f64)),
            (
                "best_objective",
                trace
                    .best_feasible()
                    .map(|s| Json::Num(s.objective))
                    .unwrap_or(Json::Null),
            ),
            ("termination", Json::Str(termination.to_string())),
        ])
    }
}

/// Resolves [`JobSpec::space`] (`"edge"`, `"datacenter"`, `"toy"`).
fn build_space(spec: &JobSpec) -> Result<DesignSpace, String> {
    match spec.space.as_str() {
        "edge" => Ok(edge_space()),
        "datacenter" => Ok(datacenter_space()),
        "toy" => Ok(toy_space()),
        other => Err(format!(
            "unknown space {other:?} (expected \"edge\", \"datacenter\", or \"toy\")"
        )),
    }
}

/// Resolves [`JobSpec::models`] against the zoo; defaults to the space's
/// natural workload (the Fig. 4 single-layer model on `"toy"`, ResNet-18
/// otherwise).
fn build_models(spec: &JobSpec) -> Result<Vec<DnnModel>, String> {
    if spec.models.is_empty() {
        return Ok(if spec.space == "toy" {
            vec![single_layer_model()]
        } else {
            vec![zoo::resnet18()]
        });
    }
    spec.models
        .iter()
        .map(|name| zoo::by_name(name).ok_or_else(|| format!("unknown model {name:?}")))
        .collect()
}

/// Resolves [`JobSpec::mapper`] (`"fixed"`, `"linear"`, `"random"`).
fn build_mapper(spec: &JobSpec) -> Result<Box<dyn MappingOptimizer>, String> {
    match spec.mapper.as_str() {
        "fixed" => Ok(Box::new(FixedMapper)),
        "linear" => Ok(Box::new(LinearMapper::new(spec.map_trials))),
        "random" => Ok(Box::new(RandomMapper::new(spec.map_trials, spec.seed))),
        other => Err(format!(
            "unknown mapper {other:?} (expected \"fixed\", \"linear\", or \"random\")"
        )),
    }
}

/// The baseline-technique registry, mirroring the bench harness's
/// labels. `None` for `"explainable"` (not a baseline) and unknown names.
fn baseline_factory(technique: &str, seed: u64) -> Option<BoxedFactory> {
    macro_rules! factory {
        ($build:expr) => {
            Some(Box::new(move || Box::new($build) as Box<dyn DseTechnique>) as BoxedFactory)
        };
    }
    match technique {
        "grid" => factory!(GridSearch),
        "random" => factory!(RandomSearch::new(seed)),
        "annealing" => factory!(SimulatedAnnealing::new(seed)),
        "genetic" => factory!(GeneticAlgorithm::new(16, seed)),
        "bayesian" => factory!(BayesianOpt::new(seed)),
        "hypermapper" => factory!(HyperMapperLike::new(seed)),
        "rl" => factory!(ConfuciuxRl::new(seed)),
        _ => None,
    }
}

/// Builds the per-job evaluator: its own memo tables (so per-job budgets
/// count per-job work), the *shared* evaluation engine, and the *shared*
/// disk cache; a degraded disk tier is recorded so
/// [`Evaluator::cache_stats`] and the job status surface it.
fn build_evaluator(
    spec: &JobSpec,
    engine: EvalEngine,
    disk: Option<Arc<DiskCache>>,
    disk_error: Option<String>,
    telemetry: Collector,
) -> Result<JobEvaluator, String> {
    let mut evaluator =
        CodesignEvaluator::new(build_space(spec)?, build_models(spec)?, build_mapper(spec)?)
            .with_engine(engine)
            .with_telemetry(telemetry);
    if let Some(disk) = disk {
        evaluator = evaluator.with_disk_cache(disk);
    } else if let Some(error) = disk_error {
        evaluator = evaluator.with_disk_cache_error(error);
    }
    Ok(evaluator)
}

/// Turns a [`JobSpec`] into a running-ready [`JobDriver`]. Validation
/// errors (unknown technique/space/mapper/model) come back as `Err` and
/// map to HTTP 400 — nothing is evaluated until the spec is sound.
pub fn build_driver(
    spec: &JobSpec,
    engine: EvalEngine,
    disk: Option<Arc<DiskCache>>,
    disk_error: Option<String>,
    telemetry: Collector,
    cancel: CancelToken,
) -> Result<Box<dyn JobDriver>, String> {
    if spec.budget == 0 {
        return Err("budget must be at least 1".to_string());
    }
    if spec.technique == "explainable" {
        let evaluator = build_evaluator(spec, engine, disk, disk_error, telemetry.clone())?;
        let initial = evaluator.space().minimum_point();
        let driver = SearchSession::new(
            dnn_latency_model(),
            DseConfig {
                budget: spec.budget,
                seed: spec.seed,
                ..DseConfig::default()
            },
        )
        .evaluator(evaluator)
        .telemetry(telemetry)
        .spec(spec)
        .cancel_token(cancel)
        .driver(initial);
        Ok(Box::new(ExplainableJob { driver }))
    } else {
        let factory = baseline_factory(&spec.technique, spec.seed).ok_or_else(|| {
            format!(
                "unknown technique {:?} (expected \"explainable\", \"grid\", \"random\", \
                 \"annealing\", \"genetic\", \"bayesian\", \"hypermapper\", or \"rl\")",
                spec.technique
            )
        })?;
        let evaluator = build_evaluator(spec, engine, disk, disk_error, telemetry.clone())?;
        let driver = BaselineDriver::new(factory, evaluator, spec.budget, spec)
            .telemetry(telemetry)
            .with_cancel_token(cancel);
        Ok(Box::new(BaselineJob {
            driver,
            technique: spec.technique.clone(),
            last: None,
        }))
    }
}
