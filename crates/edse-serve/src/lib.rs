//! `edse-serve`: multi-tenant DSE-as-a-service.
//!
//! A zero-dependency HTTP+JSON front end over the stepwise search
//! drivers introduced by the session-API redesign: clients `POST` a
//! [`JobSpec`](edse_core::JobSpec), the service hosts the search as a
//! parked [`driver::JobDriver`], and a fixed worker pool round-robins
//! over all live jobs one evaluation batch at a time. Because a batch
//! boundary is also the drivers' cancellation point, pause/resume/cancel
//! are exact: a cancel takes effect within one batch and leaves a
//! resumable snapshot when the job configured a checkpoint.
//!
//! Concurrent jobs share one [`EvalEngine`](edse_core::evaluate::EvalEngine)
//! configuration and one [`DiskCache`](edse_core::DiskCache) while each
//! keeping a private evaluator, so per-job budgets count per-job work but
//! mapping results computed by one tenant are reused by all.
//!
//! The stack is `std`-only: hand-rolled HTTP/1.1 ([`http`]), a job
//! registry + fair scheduler ([`jobs`]), the driver shims ([`driver`]),
//! and the route table ([`server`]).
#![warn(missing_docs)]

pub mod driver;
pub mod http;
pub mod jobs;
pub mod server;
