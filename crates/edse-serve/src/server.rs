//! The HTTP front end: a listener, a fixed handler pool, and the route
//! table mapping the service API onto the [`Registry`].
//!
//! | Route | Effect |
//! |---|---|
//! | `POST /jobs` | submit a [`JobSpec`] (JSON body) → `202 {"id": n}` |
//! | `GET /jobs` | list all jobs |
//! | `GET /jobs/:id` | status + incumbent + cache health |
//! | `GET /jobs/:id/events` | chunked JSONL stream of iteration records |
//! | `POST /jobs/:id/pause` | stop scheduling after the in-flight batch |
//! | `POST /jobs/:id/resume` | resume a paused job |
//! | `POST /jobs/:id/cancel` | cancel within one batch, snapshot if configured |
//! | `GET /metrics` | Prometheus exposition, all tenants merged |
//!
//! [`JobSpec`]: edse_core::JobSpec

use crate::http::{end_chunks, read_request, respond, respond_json, start_chunked, Request};
use crate::jobs::Registry;
use edse_core::JobSpec;
use edse_telemetry::json::Json;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// A running server: the bound address plus the handles needed to stop
/// it cleanly (tests and `--self-check` tear the whole thing down; a
/// production run just blocks forever).
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    registry: Arc<Registry>,
    accept_handle: Option<JoinHandle<()>>,
    handler_handles: Vec<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns
    /// `http_threads` request handlers and leaves scheduler workers to
    /// the caller-provided registry (already spawned). Returns once the
    /// socket is listening.
    pub fn start(
        addr: &str,
        http_threads: usize,
        registry: Arc<Registry>,
        worker_handles: Vec<JoinHandle<()>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let handler_handles = (0..http_threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("edse-serve-http-{i}"))
                    .spawn(move || loop {
                        let stream = {
                            let rx = rx.lock().expect("handler queue poisoned");
                            rx.recv()
                        };
                        match stream {
                            Ok(mut stream) => handle(&mut stream, &registry),
                            Err(_) => return,
                        }
                    })
                    .expect("spawn http handler")
            })
            .collect();
        let accept_stop = Arc::clone(&stop);
        let accept_handle = std::thread::Builder::new()
            .name("edse-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
            })
            .expect("spawn acceptor");
        Ok(Server {
            addr: local,
            stop,
            registry,
            accept_handle: Some(accept_handle),
            handler_handles,
            worker_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The registry behind this server (tests submit/inspect directly).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Blocks until the accept loop exits (i.e. forever, in production).
    pub fn join(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains the handler pool, and shuts the scheduler
    /// down. In-flight evaluation batches finish; queued jobs do not.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        // Dropping the acceptor dropped `tx`; handlers drain and exit.
        for handle in self.handler_handles.drain(..) {
            let _ = handle.join();
        }
        self.registry.shutdown();
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Parses `/jobs/<id>` or `/jobs/<id>/<action>` into `(id, action)`.
fn job_route(path: &str) -> Option<(u64, Option<&str>)> {
    let rest = path.strip_prefix("/jobs/")?;
    match rest.split_once('/') {
        Some((id, action)) if !action.is_empty() => Some((id.parse().ok()?, Some(action))),
        Some((id, _)) => Some((id.parse().ok()?, None)),
        None => Some((rest.parse().ok()?, None)),
    }
}

/// JSON error body.
fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::Str(message.to_string()))]).to_line()
}

/// Handles one connection: one request, one response, close.
fn handle(stream: &mut TcpStream, registry: &Registry) {
    let Some(request) = read_request(stream) else {
        respond_json(stream, 400, &error_body("malformed request"));
        return;
    };
    route(stream, &request, registry);
}

/// The route table.
fn route(stream: &mut TcpStream, request: &Request, registry: &Registry) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => {
            let body = String::from_utf8_lossy(&request.body);
            match JobSpec::from_json_str(&body).and_then(|spec| registry.submit(spec)) {
                Ok(id) => respond_json(
                    stream,
                    202,
                    &Json::obj(vec![("id", Json::Num(id as f64))]).to_line(),
                ),
                Err(e) => respond_json(stream, 400, &error_body(&e)),
            }
        }
        ("GET", "/jobs") => respond_json(stream, 200, &registry.list().to_line()),
        ("GET", "/metrics") => respond(
            stream,
            200,
            "text/plain; version=0.0.4",
            &registry.prometheus_text(),
        ),
        ("GET", "/healthz") => respond_json(stream, 200, "{\"ok\":true}"),
        (method, path) => {
            let Some((id, action)) = job_route(path) else {
                respond_json(stream, 404, &error_body("no such route"));
                return;
            };
            match (method, action) {
                ("GET", None) => match registry.status(id) {
                    Some(status) => respond_json(stream, 200, &status.to_line()),
                    None => respond_json(stream, 404, &error_body(&format!("no job {id}"))),
                },
                ("GET", Some("events")) => stream_events(stream, registry, id),
                ("POST", Some(action @ ("pause" | "resume" | "cancel"))) => {
                    let outcome = match action {
                        "pause" => registry.pause(id),
                        "resume" => registry.resume(id),
                        _ => registry.cancel(id),
                    };
                    match outcome {
                        Ok(state) => respond_json(
                            stream,
                            200,
                            &Json::obj(vec![
                                ("id", Json::Num(id as f64)),
                                ("state", Json::Str(state.label().to_string())),
                            ])
                            .to_line(),
                        ),
                        Err(e) => respond_json(stream, 409, &error_body(&e)),
                    }
                }
                ("GET" | "POST", _) => respond_json(stream, 404, &error_body("no such route")),
                _ => respond_json(stream, 405, &error_body("method not allowed")),
            }
        }
    }
}

/// Streams a job's iteration records as chunked JSONL, blocking on the
/// event buffer until the job reaches a terminal state or the client
/// hangs up.
fn stream_events(stream: &mut TcpStream, registry: &Registry, id: u64) {
    let Some(events) = registry.events(id) else {
        respond_json(stream, 404, &error_body(&format!("no job {id}")));
        return;
    };
    if start_chunked(stream, "application/jsonl").is_err() {
        return;
    }
    let mut cursor = 0usize;
    loop {
        let (lines, over) = events.wait_from(cursor);
        cursor += lines.len();
        for line in &lines {
            let mut chunk = line.clone();
            chunk.push('\n');
            if crate::http::write_chunk(stream, &chunk).is_err() {
                return;
            }
        }
        if over {
            break;
        }
    }
    let _ = end_chunks(stream);
}
