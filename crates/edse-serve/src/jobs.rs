//! Multi-tenant job registry and fair scheduler.
//!
//! Jobs are [`JobDriver`]s parked in a table; a fixed pool of worker
//! threads round-robins over the runnable ones, advancing each by one
//! `step` (at most one evaluation batch) per turn. That batch boundary is
//! the service's unit of everything: fairness (no job holds a worker
//! longer than one batch), cancellation (a cancel takes effect at the
//! next boundary and leaves a resumable snapshot), and pause/resume
//! (a paused job is simply not re-queued until resumed).
//!
//! Every job gets its **own evaluator** (so per-job budgets count per-job
//! work) sharing the server's one [`EvalEngine`] configuration and one
//! [`DiskCache`]; and its own [`Collector`] with a `job<id>/` metric
//! prefix plus an [`EventBuffer`] sink, so iteration records stream to
//! `GET /jobs/:id/events` and `/metrics` can merge all tenants without
//! name collisions.

use crate::driver::{build_driver, JobDriver};
use edse_core::evaluate::{CacheStats, EvalEngine};
use edse_core::{CancelToken, DiskCache, JobSpec, StepOutcome};
use edse_telemetry::json::Json;
use edse_telemetry::{export, Collector, Event, HistogramSummary, Sink};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Parked in the run queue or being stepped right now.
    Running,
    /// Not scheduled until `POST /jobs/:id/resume`.
    Paused,
    /// Terminated by `POST /jobs/:id/cancel`; a resumable snapshot was
    /// written if the spec configured a checkpoint path.
    Cancelled,
    /// Ran to its own termination (budget, convergence, or stall).
    Completed,
    /// The driver panicked; see the status `error` field.
    Failed,
}

impl JobState {
    /// Lowercase wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Cancelled => "cancelled",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
        }
    }

    /// Whether no further scheduling will happen.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Cancelled | JobState::Completed | JobState::Failed
        )
    }
}

/// Append-only JSONL buffer of one job's iteration records, shared
/// between the job's telemetry sink and any number of `GET /events`
/// streamers. Closed exactly once, when the job reaches a terminal state.
pub struct EventBuffer {
    lines: Mutex<(Vec<String>, bool)>,
    grew: Condvar,
}

impl EventBuffer {
    fn new() -> Arc<EventBuffer> {
        Arc::new(EventBuffer {
            lines: Mutex::new((Vec::new(), false)),
            grew: Condvar::new(),
        })
    }

    fn push(&self, line: String) {
        let mut lines = self.lines.lock().expect("event buffer poisoned");
        lines.0.push(line);
        self.grew.notify_all();
    }

    fn close(&self) {
        let mut lines = self.lines.lock().expect("event buffer poisoned");
        lines.1 = true;
        self.grew.notify_all();
    }

    /// Lines `[from..]`, blocking until there is something new or the
    /// buffer is closed. Returns the new lines and whether the stream is
    /// over (closed and fully drained).
    pub fn wait_from(&self, from: usize) -> (Vec<String>, bool) {
        let mut lines = self.lines.lock().expect("event buffer poisoned");
        while lines.0.len() <= from && !lines.1 {
            lines = self.grew.wait(lines).expect("event buffer poisoned");
        }
        let new: Vec<String> = lines.0[from.min(lines.0.len())..].to_vec();
        let over = lines.1;
        (new, over)
    }

    /// Non-blocking snapshot: all lines so far and the closed flag.
    pub fn snapshot(&self) -> (Vec<String>, bool) {
        let lines = self.lines.lock().expect("event buffer poisoned");
        (lines.0.clone(), lines.1)
    }
}

/// Telemetry sink feeding an [`EventBuffer`] with iteration records (one
/// JSON line each, the same schema as `--trace-out`).
struct EventSink {
    buffer: Arc<EventBuffer>,
}

impl Sink for EventSink {
    fn record(&self, event: &Event) {
        if matches!(event, Event::Iteration { .. }) {
            self.buffer.push(event.to_json_line());
        }
    }

    fn flush(&self) {}

    fn wants_metrics(&self) -> bool {
        true
    }
}

/// One hosted job. The driver is `None` while a worker has it leased (or
/// after it was consumed into `summary`).
struct Job {
    spec: JobSpec,
    state: JobState,
    driver: Option<Box<dyn JobDriver>>,
    queued: bool,
    cancel: CancelToken,
    collector: Collector,
    events: Arc<EventBuffer>,
    summary: Option<Json>,
    error: Option<String>,
    evaluations: usize,
    best_objective: Option<f64>,
    cache: CacheStats,
}

struct Inner {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    next_id: u64,
    shutdown: bool,
}

/// The registry: job table + run queue + the worker pool's condition
/// variable. One per server; shared by the HTTP handlers and workers.
pub struct Registry {
    inner: Mutex<Inner>,
    work: Condvar,
    engine: EvalEngine,
    disk: Option<Arc<DiskCache>>,
    disk_error: Option<String>,
    server_telemetry: Collector,
}

impl Registry {
    /// A registry whose jobs share `engine` and `disk`. `disk_error`
    /// records why a *requested* disk cache is absent, so every job's
    /// status surfaces the degradation.
    pub fn new(
        engine: EvalEngine,
        disk: Option<Arc<DiskCache>>,
        disk_error: Option<String>,
        server_telemetry: Collector,
    ) -> Arc<Registry> {
        Arc::new(Registry {
            inner: Mutex::new(Inner {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                next_id: 1,
                shutdown: false,
            }),
            work: Condvar::new(),
            engine,
            disk,
            disk_error,
            server_telemetry,
        })
    }

    /// Validates `spec`, builds its driver, and enqueues it. Returns the
    /// job id; `Err` is a client error (HTTP 400).
    pub fn submit(&self, spec: JobSpec) -> Result<u64, String> {
        // Build outside the registry lock: constructing an evaluator
        // (resume loads, model setup) must not stall the scheduler.
        let id = {
            let mut inner = self.inner.lock().expect("registry poisoned");
            let id = inner.next_id;
            inner.next_id += 1;
            id
        };
        let events = EventBuffer::new();
        let collector = Collector::builder()
            .prefix(format!("job{id}/"))
            .sink(EventSink {
                buffer: Arc::clone(&events),
            })
            .build();
        let cancel = CancelToken::new();
        let driver = build_driver(
            &spec,
            self.engine,
            self.disk.clone(),
            self.disk_error.clone(),
            collector.clone(),
            cancel.clone(),
        )?;
        let cache = driver.cache_stats();
        let job = Job {
            spec,
            state: JobState::Running,
            driver: Some(driver),
            queued: true,
            cancel,
            collector,
            events,
            summary: None,
            error: None,
            evaluations: 0,
            best_objective: None,
            cache,
        };
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.jobs.insert(id, job);
        inner.queue.push_back(id);
        self.work.notify_one();
        self.server_telemetry.counter("serve/jobs_submitted", 1);
        Ok(id)
    }

    /// Pauses a running job: it finishes its in-flight step (if a worker
    /// holds it) and is then not rescheduled. `Err` on unknown id or a
    /// terminal job.
    pub fn pause(&self, id: u64) -> Result<JobState, String> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let job = inner.jobs.get_mut(&id).ok_or(format!("no job {id}"))?;
        if job.state.terminal() {
            return Err(format!("job {id} is {}", job.state.label()));
        }
        job.state = JobState::Paused;
        inner.queue.retain(|&q| q != id);
        if let Some(job) = inner.jobs.get_mut(&id) {
            job.queued = false;
        }
        Ok(JobState::Paused)
    }

    /// Resumes a paused job. Idempotent on a running job; `Err` on
    /// unknown id or a terminal job.
    pub fn resume(&self, id: u64) -> Result<JobState, String> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let job = inner.jobs.get_mut(&id).ok_or(format!("no job {id}"))?;
        if job.state.terminal() {
            return Err(format!("job {id} is {}", job.state.label()));
        }
        job.state = JobState::Running;
        if !job.queued && job.driver.is_some() {
            job.queued = true;
            inner.queue.push_back(id);
            self.work.notify_one();
        }
        Ok(JobState::Running)
    }

    /// Requests cancellation: the token fires now, and the job's next
    /// scheduled step observes it — within one evaluation batch — writing
    /// a resumable snapshot when the spec configured a checkpoint.
    /// Idempotent; `Err` on unknown id.
    pub fn cancel(&self, id: u64) -> Result<JobState, String> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let job = inner.jobs.get_mut(&id).ok_or(format!("no job {id}"))?;
        if job.state.terminal() {
            return Ok(job.state);
        }
        job.cancel.cancel();
        // A paused (or momentarily leased) job still needs one more step
        // to observe the token and finalize, so put it back in rotation.
        job.state = JobState::Running;
        if !job.queued && job.driver.is_some() {
            job.queued = true;
            inner.queue.push_back(id);
            self.work.notify_one();
        }
        Ok(JobState::Running)
    }

    /// The status document for `GET /jobs/:id`.
    pub fn status(&self, id: u64) -> Option<Json> {
        let inner = self.inner.lock().expect("registry poisoned");
        let job = inner.jobs.get(&id)?;
        let mut fields = vec![
            ("id", Json::Num(id as f64)),
            ("state", Json::Str(job.state.label().to_string())),
            ("technique", Json::Str(job.spec.technique.clone())),
            ("budget", Json::Num(job.spec.budget as f64)),
            ("evaluations", Json::Num(job.evaluations as f64)),
            (
                "best_objective",
                job.best_objective.map(Json::Num).unwrap_or(Json::Null),
            ),
            (
                "cache",
                Json::obj(vec![
                    (
                        "unique_evaluations",
                        Json::Num(job.cache.unique_evaluations as f64),
                    ),
                    ("disk_attached", Json::Bool(job.cache.disk.is_some())),
                    (
                        "disk_error",
                        job.cache
                            .disk_error
                            .clone()
                            .map(Json::Str)
                            .unwrap_or(Json::Null),
                    ),
                ]),
            ),
        ];
        if let Some(summary) = &job.summary {
            fields.push(("result", summary.clone()));
        }
        if let Some(error) = &job.error {
            fields.push(("error", Json::Str(error.clone())));
        }
        Some(Json::obj(fields))
    }

    /// The listing document for `GET /jobs`.
    pub fn list(&self) -> Json {
        let inner = self.inner.lock().expect("registry poisoned");
        Json::Arr(
            inner
                .jobs
                .iter()
                .map(|(&id, job)| {
                    Json::obj(vec![
                        ("id", Json::Num(id as f64)),
                        ("state", Json::Str(job.state.label().to_string())),
                        ("technique", Json::Str(job.spec.technique.clone())),
                        ("evaluations", Json::Num(job.evaluations as f64)),
                    ])
                })
                .collect(),
        )
    }

    /// The job's event buffer, for the streaming endpoint.
    pub fn events(&self, id: u64) -> Option<Arc<EventBuffer>> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.jobs.get(&id).map(|job| Arc::clone(&job.events))
    }

    /// Whether the job exists and is in a terminal state (used by
    /// streamers and tests).
    pub fn is_terminal(&self, id: u64) -> Option<bool> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.jobs.get(&id).map(|job| job.state.terminal())
    }

    /// Merged Prometheus exposition: the server collector plus every
    /// job's `job<id>/`-prefixed collector (terminal jobs included — a
    /// scrape after completion still sees the run's totals), plus the
    /// process-wide executor pool's cumulative counters (the pool is
    /// shared by all tenants, so these are server-level series).
    pub fn prometheus_text(&self) -> String {
        let mut counters = self.server_telemetry.counters();
        let mut histograms: Vec<HistogramSummary> = self.server_telemetry.histograms();
        let inner = self.inner.lock().expect("registry poisoned");
        for job in inner.jobs.values() {
            counters.extend(job.collector.counters());
            histograms.extend(job.collector.histograms());
        }
        drop(inner);
        let pool = edse_executor::Executor::global().counters();
        counters.insert("executor/steals".to_string(), pool.steals);
        counters.insert("executor/spawn_avoided".to_string(), pool.spawn_avoided);
        counters.insert("executor/queue_depth".to_string(), pool.queue_depth);
        counters.insert("executor/idle_ns".to_string(), pool.idle_ns);
        counters.insert("executor/tasks".to_string(), pool.tasks);
        counters.insert("executor/workers_spawned".to_string(), pool.workers_spawned);
        export::prometheus_text(&counters, &histograms)
    }

    /// Asks the worker pool to exit once the queue drains of leases; used
    /// by tests and `--self-check` teardown.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        inner.shutdown = true;
        self.work.notify_all();
    }

    /// Blocks until job `id` reaches a terminal state (test/self-check
    /// helper; polls on the event buffer's close signal).
    pub fn wait_terminal(&self, id: u64) -> Option<JobState> {
        let events = self.events(id)?;
        loop {
            let (_, over) = events.wait_from(usize::MAX - 1);
            if over {
                break;
            }
        }
        let inner = self.inner.lock().expect("registry poisoned");
        inner.jobs.get(&id).map(|job| job.state)
    }

    /// Spawns `workers` scheduler threads round-robining over the run
    /// queue. Each turn advances one job by one step.
    pub fn spawn_workers(self: &Arc<Registry>, workers: usize) -> Vec<JoinHandle<()>> {
        (0..workers.max(1))
            .map(|i| {
                let registry = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("edse-serve-worker-{i}"))
                    .spawn(move || registry.worker_loop())
                    .expect("spawn worker")
            })
            .collect()
    }

    fn worker_loop(&self) {
        loop {
            // Lease the next runnable job.
            let (id, mut driver) = {
                let mut inner = self.inner.lock().expect("registry poisoned");
                let leased = loop {
                    if inner.shutdown {
                        return;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        let Some(job) = inner.jobs.get_mut(&id) else {
                            continue;
                        };
                        job.queued = false;
                        if job.state != JobState::Running {
                            continue;
                        }
                        let Some(driver) = job.driver.take() else {
                            continue;
                        };
                        break (id, driver);
                    }
                    inner = self.work.wait(inner).expect("registry poisoned");
                };
                leased
            };

            // Step outside the lock: other workers keep scheduling.
            let stepped = catch_unwind(AssertUnwindSafe(|| {
                let outcome = driver.step();
                (outcome, driver)
            }));

            let mut inner = self.inner.lock().expect("registry poisoned");
            let Some(job) = inner.jobs.get_mut(&id) else {
                continue;
            };
            match stepped {
                Ok((outcome, driver)) => {
                    job.evaluations = driver.evaluations();
                    job.best_objective = driver.best_objective();
                    job.cache = driver.cache_stats();
                    match outcome {
                        StepOutcome::Pending => {
                            job.driver = Some(driver);
                            if job.state == JobState::Running && !job.queued {
                                job.queued = true;
                                inner.queue.push_back(id);
                                self.work.notify_one();
                            }
                        }
                        StepOutcome::Done | StepOutcome::Cancelled => {
                            job.state = if outcome == StepOutcome::Done {
                                JobState::Completed
                            } else {
                                JobState::Cancelled
                            };
                            job.summary = Some(driver.finish());
                            job.collector.flush();
                            job.events.close();
                            self.server_telemetry.counter("serve/jobs_finished", 1);
                        }
                    }
                }
                Err(payload) => {
                    let message = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "job panicked".to_string());
                    job.state = JobState::Failed;
                    job.error = Some(message);
                    job.events.close();
                    self.server_telemetry.counter("serve/jobs_failed", 1);
                }
            }
        }
    }
}
