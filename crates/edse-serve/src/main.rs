//! `edse-serve` binary: flag parsing, shared-resource setup, and an
//! in-process `--self-check` that exercises the whole HTTP surface end
//! to end (used by `scripts/check.sh`).

use edse_core::evaluate::EvalEngine;
use edse_core::DiskCache;
use edse_serve::jobs::Registry;
use edse_serve::server::Server;
use edse_telemetry::{json, Collector, Event, Sink};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

/// Keeps the server [`Collector`] metrics-active (counters and
/// histograms aggregate in the collector itself) without buffering any
/// events — the scrape surface is `GET /metrics`, not a sink.
struct MetricsOnlySink;

impl Sink for MetricsOnlySink {
    fn record(&self, _event: &Event) {}
}

struct Args {
    port: u16,
    threads: usize,
    http_threads: usize,
    eval_threads: Option<usize>,
    cache_dir: Option<PathBuf>,
    self_check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        port: 8080,
        threads: 2,
        http_threads: 4,
        eval_threads: None,
        cache_dir: None,
        self_check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--http-threads" => {
                args.http_threads = value("--http-threads")?
                    .parse()
                    .map_err(|e| format!("--http-threads: {e}"))?
            }
            "--eval-threads" => {
                args.eval_threads = Some(
                    value("--eval-threads")?
                        .parse()
                        .map_err(|e| format!("--eval-threads: {e}"))?,
                )
            }
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--self-check" => args.self_check = true,
            "--help" | "-h" => {
                println!(
                    "edse-serve: multi-tenant DSE-as-a-service\n\n\
                     USAGE: edse-serve [--port N] [--threads N] [--http-threads N]\n\
                            [--eval-threads N] [--cache-dir DIR] [--self-check]\n\n\
                     --port N          listen port (default 8080; 0 = ephemeral)\n\
                     --threads N       scheduler worker threads leasing job steps\n\
                     \u{20}                 (default 2); evaluation itself runs on the\n\
                     \u{20}                 process-wide executor pool shared by all tenants\n\
                     --http-threads N  HTTP handler threads (default 4)\n\
                     --eval-threads N  per-step evaluation-engine budget on the shared\n\
                     \u{20}                 pool (default: all cores, bounded by\n\
                     \u{20}                 EDSE_TEST_THREADS; 1 = serial)\n\
                     --cache-dir DIR   shared persistent evaluation cache\n\
                     --self-check      run the end-to-end smoke in-process and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Builds the shared engine/disk/registry from the flags and starts the
/// server. An unopenable `--cache-dir` degrades to cacheless with the
/// error surfaced in every job's status, not a fatal exit.
fn start(args: &Args, addr: &str) -> std::io::Result<Server> {
    // The default engine rides the process-wide executor pool (its budget
    // resolves to available parallelism, bounded by EDSE_TEST_THREADS like
    // the pool itself), so concurrent tenants' batches interleave at chunk
    // granularity instead of serializing whole steps.
    let engine = match args.eval_threads {
        None => EvalEngine::default(),
        Some(n) => EvalEngine::with_threads(n),
    };
    let telemetry = Collector::builder().sink(MetricsOnlySink).build();
    let (disk, disk_error) = match &args.cache_dir {
        None => (None, None),
        Some(dir) => match DiskCache::open_with(dir, telemetry.clone()) {
            Ok(cache) => (Some(Arc::new(cache)), None),
            Err(e) => {
                eprintln!(
                    "warning: cache dir {}: {e}; continuing without a disk cache",
                    dir.display()
                );
                (None, Some(e))
            }
        },
    };
    let registry = Registry::new(engine, disk, disk_error, telemetry);
    let workers = registry.spawn_workers(args.threads);
    Server::start(addr, args.http_threads, registry, workers)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.self_check {
        match self_check(&args) {
            Ok(()) => {
                println!("edse-serve self-check: ok");
                return;
            }
            Err(e) => {
                eprintln!("edse-serve self-check FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    let addr = format!("0.0.0.0:{}", args.port);
    match start(&args, &addr) {
        Ok(server) => {
            println!("edse-serve listening on {}", server.addr());
            server.join();
        }
        Err(e) => {
            eprintln!("error: bind {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// One blocking HTTP exchange over a fresh connection: returns the
/// status code and the (de-chunked) body.
fn exchange(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: edse-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {text:?}"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {head:?}"))?;
    let chunked = head.lines().any(|l| {
        l.to_ascii_lowercase()
            .contains("transfer-encoding: chunked")
    });
    let body = if chunked {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    Ok((status, body))
}

/// Minimal chunked-transfer decoder for the self-check client.
fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    while let Some((size_line, after)) = rest.split_once("\r\n") {
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            break;
        };
        if size == 0 || after.len() < size {
            break;
        }
        out.push_str(&after[..size]);
        rest = after[size..].strip_prefix("\r\n").unwrap_or(&after[size..]);
    }
    out
}

/// Polls `GET /jobs/:id` until its `state` matches `want` (bounded).
fn wait_state(addr: std::net::SocketAddr, id: u64, want: &[&str]) -> Result<String, String> {
    for _ in 0..1200 {
        let (status, body) = exchange(addr, "GET", &format!("/jobs/{id}"), "")?;
        if status != 200 {
            return Err(format!("GET /jobs/{id} -> {status}: {body}"));
        }
        let doc = json::parse(&body).map_err(|e| format!("status JSON: {e}"))?;
        let state = doc
            .get("state")
            .and_then(|s| s.as_str())
            .ok_or("status missing state")?
            .to_string();
        if want.contains(&state.as_str()) {
            return Ok(state);
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    Err(format!("job {id} never reached {want:?}"))
}

/// The end-to-end smoke: boots a full server on an ephemeral port, runs
/// two concurrent toy jobs to completion over the shared cache, streams
/// events, pauses/resumes/cancels a third job, checks the merged
/// `/metrics`, and tears everything down. No external client needed.
fn self_check(args: &Args) -> Result<(), String> {
    let scratch = std::env::temp_dir().join(format!("edse-serve-check-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| format!("scratch dir: {e}"))?;
    let boot = Args {
        port: 0,
        cache_dir: Some(scratch.join("cache")),
        self_check: false,
        // Default the worker budget from EDSE_TEST_THREADS so the smoke
        // exercises the same parallelism CI pins for the shared pool even
        // on a 1-CPU container.
        threads: args
            .threads
            .max(edse_executor::env_thread_override().unwrap_or(2)),
        http_threads: args.http_threads,
        eval_threads: args.eval_threads,
    };
    let server = start(&boot, "127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let result = self_check_against(addr, &scratch);
    server.stop();
    let _ = std::fs::remove_dir_all(&scratch);
    result
}

fn self_check_against(addr: std::net::SocketAddr, scratch: &std::path::Path) -> Result<(), String> {
    // Two concurrent toy jobs — different techniques, same shared cache.
    let toy = |technique: &str, budget: usize| {
        format!(
            "{{\"technique\":\"{technique}\",\"space\":\"toy\",\"mapper\":\"fixed\",\"budget\":{budget},\"seed\":7}}"
        )
    };
    let (status, body) = exchange(addr, "POST", "/jobs", &toy("explainable", 12))?;
    if status != 202 {
        return Err(format!("submit explainable -> {status}: {body}"));
    }
    let (status, body) = exchange(addr, "POST", "/jobs", &toy("grid", 12))?;
    if status != 202 {
        return Err(format!("submit grid -> {status}: {body}"));
    }
    for id in [1u64, 2] {
        let state = wait_state(addr, id, &["completed", "failed", "cancelled"])?;
        if state != "completed" {
            let (_, body) = exchange(addr, "GET", &format!("/jobs/{id}"), "")?;
            return Err(format!("job {id} ended {state}: {body}"));
        }
    }
    // The event stream replays the full run as JSONL iteration records.
    let (status, events) = exchange(addr, "GET", "/jobs/1/events", "")?;
    if status != 200 || !events.contains("\"iteration\"") {
        return Err(format!("events stream -> {status}: {events:?}"));
    }
    // Job 3: big budget so it is still running when control requests land;
    // checkpoint configured so cancel leaves a resumable snapshot.
    let snap = scratch.join("job3.snapshot");
    let spec = format!(
        "{{\"technique\":\"explainable\",\"space\":\"edge\",\"mapper\":\"fixed\",\"budget\":5000,\
         \"seed\":3,\"checkpoint\":\"{}\",\"checkpoint_every\":1}}",
        snap.display()
    );
    let (status, body) = exchange(addr, "POST", "/jobs", &spec)?;
    if status != 202 {
        return Err(format!("submit job 3 -> {status}: {body}"));
    }
    let (status, body) = exchange(addr, "POST", "/jobs/3/pause", "")?;
    if status != 200 {
        return Err(format!("pause -> {status}: {body}"));
    }
    wait_state(addr, 3, &["paused"])?;
    let (status, body) = exchange(addr, "POST", "/jobs/3/resume", "")?;
    if status != 200 {
        return Err(format!("resume -> {status}: {body}"));
    }
    let (status, body) = exchange(addr, "POST", "/jobs/3/cancel", "")?;
    if status != 200 {
        return Err(format!("cancel -> {status}: {body}"));
    }
    let state = wait_state(addr, 3, &["cancelled", "completed", "failed"])?;
    if state != "cancelled" {
        return Err(format!("job 3 ended {state}, expected cancelled"));
    }
    if !snap.exists() {
        return Err("cancel left no resumable snapshot".to_string());
    }
    // Control endpoints reject terminal jobs and unknown ids.
    let (status, _) = exchange(addr, "POST", "/jobs/3/pause", "")?;
    if status != 409 {
        return Err(format!("pause of cancelled job -> {status}, expected 409"));
    }
    let (status, _) = exchange(addr, "GET", "/jobs/99", "")?;
    if status != 404 {
        return Err(format!("GET /jobs/99 -> {status}, expected 404"));
    }
    let (status, body) = exchange(addr, "POST", "/jobs", "{\"technique\":\"nope\"}")?;
    if status != 400 {
        return Err(format!("bad technique -> {status}: {body}"));
    }
    // Merged metrics: server counters plus per-job prefixed series.
    let (status, metrics) = exchange(addr, "GET", "/metrics", "")?;
    if status != 200 {
        return Err(format!("metrics -> {status}"));
    }
    // Names reach Prometheus sanitized: `/` becomes `_`, `edse_` prefix.
    for needle in ["edse_serve_jobs_submitted", "edse_job1_", "edse_job2_"] {
        if !metrics.contains(needle) {
            return Err(format!("metrics missing {needle:?}:\n{metrics}"));
        }
    }
    Ok(())
}
