//! Service-level tests: shared-cache multi-tenancy, per-job budgets,
//! cancellation within one batch with resumable snapshots, scheduler
//! robustness under a random pause/resume/cancel storm, determinism of a
//! paused-and-resumed job against a straight-through run, and an HTTP
//! smoke over a real socket.

use edse_core::evaluate::EvalEngine;
use edse_core::{CancelToken, DiskCache, JobSpec, StepOutcome};
use edse_serve::driver::build_driver;
use edse_serve::jobs::{JobState, Registry};
use edse_serve::server::Server;
use edse_telemetry::json::{self, Json};
use edse_telemetry::Collector;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edse-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn toy_spec(technique: &str, budget: usize, seed: u64) -> JobSpec {
    JobSpec {
        technique: technique.to_string(),
        budget,
        seed,
        space: "toy".to_string(),
        mapper: "fixed".to_string(),
        ..JobSpec::default()
    }
}

/// Runs a spec straight through on a standalone driver (no scheduler)
/// and returns its final summary document.
fn run_straight(spec: &JobSpec, engine: EvalEngine) -> Json {
    let mut driver = build_driver(
        spec,
        engine,
        None,
        None,
        Collector::noop(),
        CancelToken::new(),
    )
    .expect("build driver");
    for _ in 0..100_000 {
        match driver.step() {
            StepOutcome::Pending => continue,
            StepOutcome::Done => return driver.finish(),
            StepOutcome::Cancelled => panic!("uncancelled driver reported Cancelled"),
        }
    }
    panic!("driver never finished");
}

#[test]
fn concurrent_jobs_share_disk_cache_with_private_budgets() {
    let dir = scratch_dir("shared");
    let disk = Arc::new(DiskCache::open_with(dir.join("cache"), Collector::noop()).expect("disk"));
    let registry = Registry::new(EvalEngine::serial(), Some(disk), None, Collector::noop());
    let workers = registry.spawn_workers(3);

    let a = registry
        .submit(toy_spec("explainable", 12, 7))
        .expect("submit a");
    let b = registry
        .submit(toy_spec("random", 10, 7))
        .expect("submit b");
    assert_eq!(registry.wait_terminal(a), Some(JobState::Completed));
    assert_eq!(registry.wait_terminal(b), Some(JobState::Completed));

    let status_a = registry.status(a).expect("status a");
    let status_b = registry.status(b).expect("status b");
    // Budgets are per job even though the disk tier is shared: the random
    // baseline counts exactly its own trace; the explainable run counts
    // its own unique evaluations.
    assert_eq!(
        status_b.get("evaluations").and_then(Json::as_f64),
        Some(10.0)
    );
    let evals_a = status_a
        .get("evaluations")
        .and_then(Json::as_f64)
        .expect("evals a");
    assert!(
        evals_a > 0.0 && evals_a <= 12.0,
        "explainable evals {evals_a}"
    );
    for status in [&status_a, &status_b] {
        assert_eq!(
            status
                .get("cache")
                .and_then(|c| c.get("disk_attached"))
                .and_then(Json::as_bool),
            Some(true),
            "both tenants must share the disk tier"
        );
        assert!(
            status.get("result").is_some(),
            "terminal status carries the summary"
        );
    }

    registry.shutdown();
    for w in workers {
        w.join().expect("worker join");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_stops_within_one_batch_and_leaves_resumable_snapshot() {
    let dir = scratch_dir("cancel");
    let snap = dir.join("job.snapshot");
    let spec = JobSpec {
        technique: "explainable".to_string(),
        budget: 60,
        seed: 3,
        space: "edge".to_string(),
        mapper: "fixed".to_string(),
        checkpoint: Some(snap.clone()),
        checkpoint_every: 1,
        ..JobSpec::default()
    };
    let engine = EvalEngine::serial();

    // Step a standalone driver a few batches, then cancel: the VERY NEXT
    // step must observe the token ("within one evaluation batch").
    let cancel = CancelToken::new();
    let mut driver = build_driver(&spec, engine, None, None, Collector::noop(), cancel.clone())
        .expect("build driver");
    for _ in 0..5 {
        assert_eq!(driver.step(), StepOutcome::Pending);
    }
    cancel.cancel();
    assert_eq!(driver.step(), StepOutcome::Cancelled);
    let cancelled_evals = driver.evaluations();
    assert!(
        cancelled_evals < spec.budget,
        "cancel must not run to budget"
    );
    let summary = driver.finish();
    assert_eq!(
        summary.get("termination").and_then(Json::as_str),
        Some("cancelled")
    );
    assert!(snap.exists(), "cancel must leave the snapshot behind");

    // Resuming from the snapshot and running to completion is
    // bit-identical to a straight-through run of the same spec.
    let resumed_spec = JobSpec {
        resume: true,
        ..spec.clone()
    };
    let resumed = run_straight(&resumed_spec, engine);
    let fresh_spec = JobSpec {
        checkpoint: None,
        ..spec.clone()
    };
    let fresh = run_straight(&fresh_spec, engine);
    assert_eq!(
        resumed.to_line(),
        fresh.to_line(),
        "resume-after-cancel must reproduce the straight-through run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_tenant_completes_while_long_sweep_tenant_runs() {
    // Two tenants on one registry sharing the process-wide executor pool:
    // a long job whose every step runs real linear-mapper sweeps over the
    // edge space, and a short toy job. Fairness is enforced at chunk
    // granularity — pool workers re-pick scopes round-robin per task — so
    // the short tenant must finish while the long sweep is still running,
    // instead of queueing behind it.
    let registry = Registry::new(EvalEngine::with_threads(2), None, None, Collector::noop());
    let workers = registry.spawn_workers(2);
    // Annealing evaluates point by point, so its replay chunks give the
    // scheduler real step boundaries while every evaluation still runs
    // linear-mapper sweeps over the edge space through the shared pool.
    let long = registry
        .submit(JobSpec {
            technique: "annealing".to_string(),
            budget: 200,
            map_trials: 150,
            seed: 11,
            space: "edge".to_string(),
            mapper: "linear".to_string(),
            ..JobSpec::default()
        })
        .expect("submit long");
    let short = registry
        .submit(toy_spec("explainable", 6, 3))
        .expect("submit short");
    assert_eq!(registry.wait_terminal(short), Some(JobState::Completed));
    assert_eq!(
        registry.is_terminal(long),
        Some(false),
        "long sweep tenant should still be running when the short one finishes"
    );
    // The shared pool's counters are server-level series in /metrics.
    let metrics = registry.prometheus_text();
    for needle in [
        "executor_spawn_avoided",
        "executor_steals",
        "executor_idle_ns",
    ] {
        assert!(metrics.contains(needle), "missing {needle} in:\n{metrics}");
    }
    registry.cancel(long).expect("cancel long");
    let state = registry.wait_terminal(long).expect("long exists");
    assert!(matches!(state, JobState::Cancelled | JobState::Completed));
    registry.shutdown();
    for w in workers {
        w.join().expect("worker join");
    }
}

#[test]
fn scheduler_survives_random_control_storm() {
    let registry = Registry::new(EvalEngine::serial(), None, None, Collector::noop());
    let workers = registry.spawn_workers(3);
    let techniques = [
        "explainable",
        "grid",
        "random",
        "annealing",
        "genetic",
        "rl",
    ];
    let ids: Vec<u64> = techniques
        .iter()
        .enumerate()
        .map(|(i, t)| {
            registry
                .submit(toy_spec(t, 14, i as u64 + 1))
                .expect("submit")
        })
        .collect();

    // A deterministic LCG storm of pause/resume/cancel at whatever batch
    // boundaries the scheduler happens to be at.
    let mut rng_state = 0x2545F4914F6CDD1Du64;
    let mut next = move |n: u64| {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng_state >> 33) % n
    };
    for round in 0..60 {
        let id = ids[next(ids.len() as u64) as usize];
        // Control calls may race with completion; 'already terminal' is a
        // legal answer, never a crash or a wedged queue.
        match next(if round > 40 { 3 } else { 2 }) {
            0 => drop(registry.pause(id)),
            1 => drop(registry.resume(id)),
            _ => drop(registry.cancel(id)),
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    // Un-wedge anything the storm left paused, then everything must
    // reach a terminal state.
    for &id in &ids {
        let _ = registry.resume(id);
    }
    for &id in &ids {
        let state = registry.wait_terminal(id).expect("job exists");
        assert!(
            matches!(state, JobState::Completed | JobState::Cancelled),
            "job {id} ended {state:?}"
        );
        let status = registry.status(id).expect("status");
        assert!(
            status.get("result").is_some(),
            "terminal job {id} has a summary"
        );
    }
    registry.shutdown();
    for w in workers {
        w.join().expect("worker join");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A job that gets paused and resumed at arbitrary points while
    /// sharing the scheduler with a decoy tenant finishes bit-identical
    /// to the same spec run straight through on a standalone driver.
    #[test]
    fn paused_and_resumed_job_matches_straight_through(
        seed in 0u64..1000,
        budget in 8usize..20,
        technique_idx in 0usize..3,
        pauses in proptest::collection::vec(0u64..8, 1..4),
    ) {
        let technique = ["explainable", "random", "genetic"][technique_idx];
        let spec = toy_spec(technique, budget, seed);
        let expected = run_straight(&spec, EvalEngine::serial());

        let registry = Registry::new(EvalEngine::serial(), None, None, Collector::noop());
        let workers = registry.spawn_workers(2);
        let decoy = registry.submit(toy_spec("grid", 12, seed ^ 0xFF)).unwrap();
        let id = registry.submit(spec).unwrap();
        for &pause in &pauses {
            let _ = registry.pause(id);
            std::thread::sleep(std::time::Duration::from_millis(pause));
            let _ = registry.resume(id);
        }
        let _ = registry.resume(id);
        prop_assert_eq!(registry.wait_terminal(id), Some(JobState::Completed));
        registry.wait_terminal(decoy);
        let status = registry.status(id).unwrap();
        let result = status.get("result").expect("summary");
        prop_assert_eq!(result.to_line(), expected.to_line());
        registry.shutdown();
        for w in workers {
            w.join().unwrap();
        }
    }
}

/// One blocking request over a real socket (the test client).
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("recv");
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text.split_once("\r\n\r\n").expect("head/body split");
    let status = head
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .expect("status");
    (status, payload.to_string())
}

#[test]
fn http_smoke_submit_poll_metrics() {
    let registry = Registry::new(EvalEngine::serial(), None, None, Collector::noop());
    let workers = registry.spawn_workers(2);
    let server = Server::start("127.0.0.1:0", 2, Arc::clone(&registry), workers).expect("start");
    let addr = server.addr();

    let (status, body) = http(
        addr,
        "POST",
        "/jobs",
        "{\"technique\":\"explainable\",\"space\":\"toy\",\"mapper\":\"fixed\",\"budget\":10,\"seed\":1}",
    );
    assert_eq!(status, 202, "{body}");
    let id = json::parse(&body)
        .expect("submit response JSON")
        .get("id")
        .and_then(Json::as_f64)
        .expect("id") as u64;

    registry.wait_terminal(id);
    let (status, body) = http(addr, "GET", &format!("/jobs/{id}"), "");
    assert_eq!(status, 200);
    let doc = json::parse(&body).expect("status JSON");
    assert_eq!(
        doc.get("state").and_then(Json::as_str),
        Some("completed"),
        "{body}"
    );

    let (status, body) = http(addr, "GET", "/jobs", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"explainable\""), "{body}");

    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains(&format!("edse_job{id}_")), "{metrics}");

    let (status, _) = http(addr, "GET", "/jobs/42", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "DELETE", "/jobs", "");
    assert_eq!(status, 404);

    server.stop();
}
