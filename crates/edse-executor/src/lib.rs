//! A process-wide persistent worker pool shared by every parallel site in
//! the workspace: evaluation-engine batches (`edse-core::evaluate`),
//! intra-layer sweep chunks (`mapper::sweep`), and multi-tenant job steps
//! (`edse-serve`). Before this crate each of those sites spawned fresh
//! scoped threads per batch; now they submit index ranges to one pool that
//! is warmed once per process.
//!
//! # Task hierarchy and stealing
//!
//! A [`Executor::run`] call registers a *scope*: `n` tasks addressed by
//! index, a concurrency budget, and a borrowed closure. Scopes form the
//! natural hierarchy job step → layer job → sweep chunk because a pool
//! worker executing a layer job may itself submit a nested scope for its
//! sweep chunks. Pool workers pull **one task at a time** from a
//! round-robin cursor over all live scopes, so an idle worker that
//! finishes its layer job immediately steals sweep chunks from a sibling
//! scope, and two `edse-serve` tenants interleave at chunk granularity
//! rather than whole-step granularity.
//!
//! # Determinism contract
//!
//! The pool decides only *who* computes a task, never what the task
//! computes or how results merge. Callers keep their slot-indexed result
//! buffers and serial in-order merges, and every task index is claimed by
//! exactly one participant (an atomic counter per scope), so results are
//! bit-identical for every pool size and every claim interleaving. Tests
//! can force adversarial claim orders with [`set_claim_perturbation`],
//! which remaps the claim counter through a bijective stride permutation —
//! by the contract above this must never change any result.
//!
//! # Pool lifecycle
//!
//! [`Executor::global`] lazily spawns `default_parallelism() - 1` detached
//! workers (the submitting thread always participates, so a scope with
//! budget *b* runs on at most *b* threads). The pool is never torn down —
//! workers park on a condvar when the injector is empty. Private pools
//! from [`Executor::new`] are for tests and join their workers on drop.
//! A panicking task is caught on the worker, the scope still runs to
//! completion, and the first payload is re-raised on the submitting
//! thread — the same observable behaviour as `std::thread::scope`.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

/// The process-wide parallelism default: `EDSE_TEST_THREADS` when set to a
/// positive integer (so CI on a 1-CPU container can keep parallel paths
/// live), otherwise the host's available parallelism. Cached per process.
pub fn default_parallelism() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        env_thread_override().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// The `EDSE_TEST_THREADS` override, if set to a positive integer.
pub fn env_thread_override() -> Option<usize> {
    std::env::var("EDSE_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Cumulative pool counters, readable at any time via [`Executor::counters`].
/// Consumers (the evaluation engine, the serve Prometheus exporter) emit
/// deltas of these as `executor/*` telemetry series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Tasks executed by a pool worker rather than the submitting thread.
    pub steals: u64,
    /// Threads the replaced scoped-spawn implementation would have spawned.
    pub spawn_avoided: u64,
    /// Sum over submits of how many scopes were already live in the
    /// injector (0 when a tenant has the pool to itself).
    pub queue_depth: u64,
    /// Total nanoseconds pool workers spent parked waiting for work.
    pub idle_ns: u64,
    /// Total tasks executed through the pool (stolen or not).
    pub tasks: u64,
    /// Worker threads spawned over the pool's lifetime. Constant after
    /// warm-up: the zero-spawns-per-batch acceptance check watches this.
    pub workers_spawned: u64,
}

/// Per-`run` statistics, shaped for the evaluation engine's batch records.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Tasks pulled per participant slot: index 0 is the submitting
    /// thread, the rest are pool workers in first-claim order, zero-padded
    /// to exactly `min(budget, n)` entries (the worker count the scoped
    /// implementation used). Sums to `n`.
    pub per_worker: Vec<u64>,
    /// Tasks of this scope executed by pool workers.
    pub steals: u64,
    /// Threads a scoped-spawn implementation would have started here.
    pub spawn_avoided: u64,
    /// Scopes already live in the injector when this one was submitted.
    pub queue_depth: u64,
}

struct PoolCounters {
    steals: AtomicU64,
    spawn_avoided: AtomicU64,
    queue_depth: AtomicU64,
    idle_ns: AtomicU64,
    tasks: AtomicU64,
    workers_spawned: AtomicU64,
}

impl PoolCounters {
    fn new() -> Self {
        PoolCounters {
            steals: AtomicU64::new(0),
            spawn_avoided: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            idle_ns: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            workers_spawned: AtomicU64::new(0),
        }
    }
}

/// A bijective remap of claim order onto task indices: claim `k` executes
/// task `(offset + k * stride) mod n` with `gcd(stride, n) == 1`. Used
/// only under [`set_claim_perturbation`] to stress the determinism
/// contract; identity when no perturbation is armed.
#[derive(Clone, Copy)]
struct ClaimPerm {
    offset: usize,
    stride: usize,
}

impl ClaimPerm {
    fn derive(seed: u64, n: usize) -> Option<ClaimPerm> {
        if seed == 0 || n < 2 {
            return None;
        }
        let mut stride = (seed as usize % n).max(1);
        while gcd(stride, n) != 1 {
            stride = stride % n + 1;
        }
        Some(ClaimPerm {
            offset: (seed >> 32) as usize % n,
            stride,
        })
    }

    fn apply(&self, k: usize, n: usize) -> usize {
        (self.offset + k.wrapping_mul(self.stride)) % n
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

static CLAIM_PERTURBATION: AtomicU64 = AtomicU64::new(0);

/// Arm (nonzero) or clear (zero) a deterministic claim-order perturbation
/// applied to every scope created afterwards. Results must be bit-identical
/// under any seed — the conformance proptests sample seeds to prove it.
pub fn set_claim_perturbation(seed: u64) {
    CLAIM_PERTURBATION.store(seed, Ordering::Relaxed);
}

/// Tracks which participant pulled how many tasks of one scope.
struct PullLedger {
    submitter: u64,
    workers: Vec<(ThreadId, u64)>,
}

struct ScopeState {
    /// Borrowed task closure, lifetime-erased. SAFETY: `run` does not
    /// return until every claimed task has finished and no further claim
    /// can succeed, so the pointee outlives every dereference.
    work: *const (dyn Fn(usize) + Sync),
    n: usize,
    /// Pool workers admitted concurrently (the submitter is extra, so the
    /// scope runs on at most `max_workers + 1` threads total).
    max_workers: usize,
    next: AtomicUsize,
    completed: AtomicUsize,
    active: AtomicUsize,
    perm: Option<ClaimPerm>,
    ledger: Mutex<PullLedger>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: the raw `work` pointer targets a `Sync` closure borrowed for the
// duration of `run`; all other fields are synchronized.
unsafe impl Send for ScopeState {}
unsafe impl Sync for ScopeState {}

impl ScopeState {
    /// Claim the next task index, or `None` once the scope is drained.
    fn claim(&self) -> Option<usize> {
        let k = self.next.fetch_add(1, Ordering::AcqRel);
        if k >= self.n {
            return None;
        }
        Some(match self.perm {
            Some(p) => p.apply(k, self.n),
            None => k,
        })
    }

    fn drained(&self) -> bool {
        self.next.load(Ordering::Acquire) >= self.n
    }

    /// Execute one claimed task, record the pull, and signal completion if
    /// it was the last one. Returns true when this call completed the scope.
    fn execute(&self, index: usize, stolen_by: Option<ThreadId>) -> bool {
        // SAFETY: see the field comment — `run` blocks until completion.
        let work = unsafe { &*self.work };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| work(index))) {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        {
            let mut ledger = self.ledger.lock().unwrap();
            match stolen_by {
                None => ledger.submitter += 1,
                Some(id) => match ledger.workers.iter_mut().find(|(w, _)| *w == id) {
                    Some((_, pulls)) => *pulls += 1,
                    None => ledger.workers.push((id, 1)),
                },
            }
        }
        let finished = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
        if finished == self.n {
            let mut done = self.done.lock().unwrap();
            *done = true;
            self.done_cv.notify_all();
            true
        } else {
            false
        }
    }
}

struct Injector {
    scopes: Vec<Arc<ScopeState>>,
    rotation: usize,
    shutdown: bool,
}

struct Shared {
    injector: Mutex<Injector>,
    work_cv: Condvar,
    counters: PoolCounters,
}

impl Shared {
    /// Pick the next scope with available work under the round-robin
    /// cursor, reserving a worker slot in it. Returns the scope and the
    /// claimed task index.
    fn pick(&self) -> Option<(Arc<ScopeState>, usize)> {
        let mut inj = self.injector.lock().unwrap();
        self.pick_locked(&mut inj)
    }

    fn pick_locked(&self, inj: &mut Injector) -> Option<(Arc<ScopeState>, usize)> {
        let len = inj.scopes.len();
        for probe in 0..len {
            let at = (inj.rotation + probe) % len;
            let scope = &inj.scopes[at];
            if scope.drained() || scope.active.load(Ordering::Acquire) >= scope.max_workers {
                continue;
            }
            scope.active.fetch_add(1, Ordering::AcqRel);
            if let Some(index) = scope.claim() {
                let picked = Arc::clone(scope);
                // Advance past this scope so a sibling scope's tasks
                // interleave at task granularity (tenant fairness).
                inj.rotation = (at + 1) % len;
                return Some((picked, index));
            }
            scope.active.fetch_sub(1, Ordering::AcqRel);
        }
        None
    }

    fn remove(&self, scope: &Arc<ScopeState>) {
        let mut inj = self.injector.lock().unwrap();
        inj.scopes.retain(|s| !Arc::ptr_eq(s, scope));
    }

    fn worker_loop(&self) {
        let me = std::thread::current().id();
        loop {
            // Park until a scope has work (or shutdown), charging the wait
            // to the pool's idle account.
            let mut picked = {
                let mut inj = self.injector.lock().unwrap();
                loop {
                    if inj.shutdown {
                        return;
                    }
                    if let Some(picked) = self.pick_locked(&mut inj) {
                        break picked;
                    }
                    let parked = Instant::now();
                    inj = self.work_cv.wait(inj).unwrap();
                    self.counters
                        .idle_ns
                        .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            };
            // Execute tasks back to back, re-picking through the injector
            // after EACH one so a sibling tenant's scope gets its turn
            // before this scope's next chunk (chunk-granularity fairness).
            loop {
                let (scope, index) = picked;
                let completed = scope.execute(index, Some(me));
                self.counters.steals.fetch_add(1, Ordering::Relaxed);
                self.counters.tasks.fetch_add(1, Ordering::Relaxed);
                if completed {
                    self.remove(&scope);
                }
                scope.active.fetch_sub(1, Ordering::AcqRel);
                match self.pick() {
                    Some(next) => picked = next,
                    None => break,
                }
            }
        }
    }
}

/// A persistent pool of detached worker threads fed by a global injector.
pub struct Executor {
    shared: Arc<Shared>,
    workers: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Executor {
    /// A private pool with exactly `workers` pool threads (tests). The
    /// global pool from [`Executor::global`] should be used everywhere else.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            injector: Mutex::new(Injector {
                scopes: Vec::new(),
                rotation: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            counters: PoolCounters::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                shared
                    .counters
                    .workers_spawned
                    .fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("edse-executor-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            shared,
            workers,
            handles: Mutex::new(handles),
        }
    }

    /// The process-wide shared pool: `default_parallelism() - 1` workers
    /// (the submitting thread is the remaining unit of parallelism), never
    /// torn down. On a 1-CPU host without `EDSE_TEST_THREADS` this is an
    /// empty pool and every scope runs inline on its submitter — still
    /// deterministic, still spawn-free.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(default_parallelism().saturating_sub(1)))
    }

    /// Number of pool worker threads (excluding submitters).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot the cumulative pool counters.
    pub fn counters(&self) -> Counters {
        let c = &self.shared.counters;
        Counters {
            steals: c.steals.load(Ordering::Relaxed),
            spawn_avoided: c.spawn_avoided.load(Ordering::Relaxed),
            queue_depth: c.queue_depth.load(Ordering::Relaxed),
            idle_ns: c.idle_ns.load(Ordering::Relaxed),
            tasks: c.tasks.load(Ordering::Relaxed),
            workers_spawned: c.workers_spawned.load(Ordering::Relaxed),
        }
    }

    /// Run `n` index-addressed tasks with at most `budget` concurrent
    /// participants (submitter included), blocking until all complete.
    /// Replaces a `std::thread::scope` that would have spawned
    /// `min(budget, n)` threads. If a task panics the scope still drains
    /// and the first payload is re-raised here, on the submitting thread.
    pub fn run(&self, n: usize, budget: usize, work: &(dyn Fn(usize) + Sync)) -> RunStats {
        let budget = budget.max(1);
        if n == 0 {
            return RunStats::default();
        }
        let would_spawn = budget.min(n);
        self.shared
            .counters
            .spawn_avoided
            .fetch_add(would_spawn as u64, Ordering::Relaxed);
        let seed = CLAIM_PERTURBATION.load(Ordering::Relaxed);
        let scope = Arc::new(ScopeState {
            work: unsafe {
                // SAFETY: lifetime erasure only; `run` blocks until every
                // task has completed, after which no claim can succeed and
                // no worker dereferences the pointer again.
                std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    work as *const _,
                )
            },
            n,
            max_workers: would_spawn.saturating_sub(1),
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            perm: ClaimPerm::derive(seed, n),
            ledger: Mutex::new(PullLedger {
                submitter: 0,
                workers: Vec::new(),
            }),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let queue_depth = if self.workers > 0 && scope.max_workers > 0 {
            let mut inj = self.shared.injector.lock().unwrap();
            let depth = inj.scopes.len() as u64;
            inj.scopes.push(Arc::clone(&scope));
            drop(inj);
            self.shared.work_cv.notify_all();
            self.shared
                .counters
                .queue_depth
                .fetch_add(depth, Ordering::Relaxed);
            depth
        } else {
            0
        };
        // The submitter participates: drain our own scope's tasks (never a
        // sibling's — wandering onto another tenant's work would let that
        // tenant's panic or latency leak into this caller).
        while let Some(index) = scope.claim() {
            if scope.execute(index, None) {
                self.shared.counters.tasks.fetch_add(1, Ordering::Relaxed);
                self.shared.remove(&scope);
                break;
            }
            self.shared.counters.tasks.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut done = scope.done.lock().unwrap();
            while !*done {
                done = scope.done_cv.wait(done).unwrap();
            }
        }
        // Defensive: the completing participant already removed the scope.
        self.shared.remove(&scope);
        let ledger = scope.ledger.lock().unwrap();
        let mut per_worker = Vec::with_capacity(would_spawn);
        per_worker.push(ledger.submitter);
        per_worker.extend(ledger.workers.iter().map(|(_, pulls)| *pulls));
        per_worker.resize(would_spawn, 0);
        let steals: u64 = ledger.workers.iter().map(|(_, pulls)| *pulls).sum();
        drop(ledger);
        let panicked = scope.panic.lock().unwrap().take();
        if let Some(payload) = panicked {
            resume_unwind(payload);
        }
        RunStats {
            per_worker,
            steals,
            spawn_avoided: would_spawn as u64,
            queue_depth,
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut inj = self.shared.injector.lock().unwrap();
            inj.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = Executor::new(2);
        for n in [0usize, 1, 2, 7, 64, 257] {
            let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            let stats = pool.run(n, 4, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            assert_eq!(stats.per_worker.iter().sum::<u64>(), n as u64);
            assert_eq!(stats.per_worker.len(), 4usize.min(n));
        }
    }

    #[test]
    fn per_worker_shape_matches_scoped_spawn_convention() {
        let pool = Executor::new(1);
        // budget 4 over 10 tasks: the scoped implementation spawned 4
        // threads, so stats must report 4 slots even though only 2
        // participants (submitter + 1 pool worker) exist here.
        let stats = pool.run(10, 4, &|_| {});
        assert_eq!(stats.per_worker.len(), 4);
        assert_eq!(stats.per_worker.iter().sum::<u64>(), 10);
    }

    #[test]
    fn inline_when_pool_is_empty_or_budget_is_one() {
        let pool = Executor::new(0);
        let stats = pool.run(5, 3, &|_| {});
        assert_eq!(stats.per_worker, vec![5, 0, 0]);
        assert_eq!(stats.steals, 0);
        let pool = Executor::new(2);
        let stats = pool.run(5, 1, &|_| {});
        assert_eq!(stats.per_worker, vec![5]);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn panic_propagates_to_the_submitter_after_the_scope_drains() {
        let pool = Executor::new(2);
        let done = AtomicU32::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, 4, &|i| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
                done.fetch_add(1, Ordering::Relaxed);
            })
        }));
        assert!(outcome.is_err());
        // Every non-panicking task still ran: the scope drains fully.
        assert_eq!(done.load(Ordering::Relaxed), 7);
        // The pool survives a panicked scope.
        let stats = pool.run(4, 2, &|_| {});
        assert_eq!(stats.per_worker.iter().sum::<u64>(), 4);
    }

    #[test]
    fn counters_track_spawns_avoided_and_tasks() {
        let pool = Executor::new(1);
        let before = pool.counters();
        pool.run(6, 3, &|_| {});
        pool.run(2, 8, &|_| {});
        let after = pool.counters();
        assert_eq!(after.spawn_avoided - before.spawn_avoided, 3 + 2);
        assert_eq!(after.tasks - before.tasks, 8);
        assert_eq!(after.workers_spawned, 1);
    }

    #[test]
    fn claim_perturbation_is_a_bijection() {
        for seed in [1u64, 7, 0xdead_beef, u64::MAX] {
            for n in [2usize, 3, 16, 97] {
                let perm = ClaimPerm::derive(seed, n).unwrap();
                let mut seen = vec![false; n];
                for k in 0..n {
                    let idx = perm.apply(k, n);
                    assert!(!seen[idx], "seed {seed} n {n} repeats index {idx}");
                    seen[idx] = true;
                }
            }
        }
    }

    #[test]
    fn perturbed_claims_still_run_every_task_once() {
        let pool = Executor::new(2);
        set_claim_perturbation(0x1234_5678_9abc_def0);
        let hits: Vec<AtomicU32> = (0..33).map(|_| AtomicU32::new(0)).collect();
        pool.run(33, 4, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        set_claim_perturbation(0);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn two_scopes_share_the_pool_without_starvation() {
        use std::sync::mpsc;
        let pool: &'static Executor = Box::leak(Box::new(Executor::new(2)));
        let (tx, rx) = mpsc::channel();
        let long = std::thread::spawn(move || {
            pool.run(64, 2, &|_| {
                std::thread::sleep(std::time::Duration::from_millis(2))
            });
            tx.send(()).unwrap();
        });
        // While the long scope runs, short scopes submitted by another
        // tenant must complete promptly: workers re-pick round-robin per
        // task, so the short scope's chunks interleave with the long one's.
        let mut short_done = 0;
        while rx.try_recv().is_err() {
            pool.run(4, 2, &|_| {});
            short_done += 1;
        }
        long.join().unwrap();
        assert!(short_done > 3, "short tenant starved: {short_done} runs");
    }
}
