//! Property-based tests for layer-shape invariants.

use proptest::prelude::*;
use workloads::layer::Dim;
use workloads::{LayerShape, Tensor};

fn arb_conv() -> impl Strategy<Value = LayerShape> {
    (
        1u64..=4,   // n
        1u64..=512, // m
        1u64..=512, // c
        1u64..=64,  // oy
        1u64..=64,  // ox
        1u64..=7,   // fy
        1u64..=7,   // fx
        1u64..=2,   // stride
    )
        .prop_map(|(n, m, c, oy, ox, fy, fx, s)| LayerShape::conv(n, m, c, oy, ox, fy, fx, s))
}

fn arb_gemm() -> impl Strategy<Value = LayerShape> {
    (1u64..=4096, 1u64..=512, 1u64..=4096).prop_map(|(m, n, k)| LayerShape::gemm(m, n, k))
}

proptest! {
    #[test]
    fn macs_equal_product_of_extents(l in arb_conv()) {
        let prod: u64 = l.dims().iter().product();
        prop_assert_eq!(l.macs(), prod);
    }

    #[test]
    fn every_dim_is_relevant_to_some_operand(l in arb_conv()) {
        for d in Dim::ALL {
            let touched = Tensor::ALL.iter().any(|op| l.relevant(*op, d));
            prop_assert!(touched, "dim {:?} relevant to nothing", d);
        }
    }

    #[test]
    fn reduction_dims_never_index_outputs(l in arb_conv()) {
        for d in Dim::ALL.into_iter().filter(|d| d.is_reduction()) {
            prop_assert!(!l.relevant(Tensor::OutputWrite, d));
            prop_assert!(!l.relevant(Tensor::OutputRead, d));
        }
    }

    #[test]
    fn input_halo_is_at_least_output_extent(l in arb_conv()) {
        let (iy, ix) = l.input_hw();
        prop_assert!(iy >= l.dim(Dim::Oy));
        prop_assert!(ix >= l.dim(Dim::Ox));
    }

    #[test]
    fn gemm_volumes_are_exact(l in arb_gemm()) {
        let (m, k, n) = (l.dim(Dim::M), l.dim(Dim::C), l.dim(Dim::Ox));
        prop_assert_eq!(l.tensor_elems(Tensor::Weight), m * k);
        prop_assert_eq!(l.tensor_elems(Tensor::Input), k * n);
        prop_assert_eq!(l.tensor_elems(Tensor::OutputWrite), m * n);
        prop_assert_eq!(l.macs(), m * k * n);
    }

    #[test]
    fn output_volume_never_exceeds_macs(l in arb_conv()) {
        prop_assert!(l.tensor_elems(Tensor::OutputWrite) <= l.macs());
        prop_assert!(l.tensor_elems(Tensor::Weight) <= l.macs());
    }

    #[test]
    fn serde_roundtrip(l in arb_conv()) {
        let json = serde_json::to_string(&l).unwrap();
        let back: LayerShape = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(l, back);
    }
}
