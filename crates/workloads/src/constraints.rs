//! Per-model execution requirements used as DSE constraints.
//!
//! The paper's Table 1 sets throughput floors per workload class:
//! 40 FPS for light vision models, 10 FPS for large vision models, and
//! 120 / 530 / 176 000 samples-per-second for the Transformer, BERT, and
//! wav2vec2 language models. A throughput floor is equivalent to a latency
//! ceiling for single-stream inference, which is how the DSE consumes it.

use serde::{Deserialize, Serialize};

/// Broad workload class, used to pick default constraint levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelClass {
    /// Light computer-vision models (ResNet18, MobileNetV2, EfficientNetB0,
    /// FasterRCNN-MobileNetV3): 40 FPS floor.
    VisionLight,
    /// Large computer-vision models (VGG16, ResNet50, ViT, YOLOv5): 10 FPS.
    VisionLarge,
    /// Natural-language models: model-specific samples/second floors.
    Language,
}

/// Inference-rate requirement for a model.
///
/// Internally stored as inferences-per-second; audio models express their
/// requirement in audio-samples-per-second, which is converted using the
/// number of audio samples consumed per inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputTarget {
    inferences_per_second: f64,
    class: ModelClass,
}

impl ThroughputTarget {
    /// A frames-per-second floor for a vision model (light if >= 40 FPS).
    pub fn fps(fps: f64) -> Self {
        assert!(fps > 0.0, "throughput floor must be positive");
        let class = if fps >= 40.0 {
            ModelClass::VisionLight
        } else {
            ModelClass::VisionLarge
        };
        Self {
            inferences_per_second: fps,
            class,
        }
    }

    /// A queries/sentences-per-second floor for a language model.
    pub fn qps(qps: f64) -> Self {
        assert!(qps > 0.0, "throughput floor must be positive");
        Self {
            inferences_per_second: qps,
            class: ModelClass::Language,
        }
    }

    /// An audio-samples-per-second floor; `samples_per_inference` is how many
    /// raw audio samples one forward pass consumes (wav2vec2 processes one
    /// second of 16 kHz audio per pass in our configuration).
    pub fn audio_samples_per_second(samples_per_second: f64, samples_per_inference: f64) -> Self {
        assert!(samples_per_second > 0.0 && samples_per_inference > 0.0);
        Self {
            inferences_per_second: samples_per_second / samples_per_inference,
            class: ModelClass::Language,
        }
    }

    /// Required inferences per second.
    pub fn inferences_per_second(&self) -> f64 {
        self.inferences_per_second
    }

    /// Equivalent single-stream latency ceiling in milliseconds.
    pub fn latency_ceiling_ms(&self) -> f64 {
        1000.0 / self.inferences_per_second
    }

    /// The workload class this target was derived from.
    pub fn class(&self) -> ModelClass {
        self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fps_classifies_light_and_large() {
        assert_eq!(ThroughputTarget::fps(40.0).class(), ModelClass::VisionLight);
        assert_eq!(ThroughputTarget::fps(10.0).class(), ModelClass::VisionLarge);
    }

    #[test]
    fn latency_ceiling_inverts_rate() {
        let t = ThroughputTarget::fps(40.0);
        assert!((t.latency_ceiling_ms() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn audio_target_converts_sample_rate() {
        // 176 k samples/s at 16 k samples per inference => 11 inf/s.
        let t = ThroughputTarget::audio_samples_per_second(176_000.0, 16_000.0);
        assert!((t.inferences_per_second() - 11.0).abs() < 1e-9);
        assert_eq!(t.class(), ModelClass::Language);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fps_rejected() {
        let _ = ThroughputTarget::fps(0.0);
    }
}
