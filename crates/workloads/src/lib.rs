#![warn(missing_docs)]
//! DNN workload definitions for accelerator design-space exploration.
//!
//! This crate encodes the eleven computer-vision and natural-language models
//! evaluated by the Explainable-DSE paper (ASPLOS 2023) as static operator
//! tables. Each model is a sequence of execution-critical operators
//! (convolutions, depthwise convolutions, and GEMMs) described by their loop
//! extents. The design-space explorer only consumes these loop extents, so a
//! faithful shape table exercises exactly the same code paths as importing
//! the models from PyTorch or Hugging Face would.
//!
//! # Example
//!
//! ```
//! use workloads::zoo;
//!
//! let model = zoo::resnet18();
//! assert_eq!(model.name(), "ResNet18");
//! let unique = model.unique_shapes();
//! assert!(!unique.is_empty());
//! // Every unique shape accounts for at least one layer instance.
//! assert!(unique.iter().map(|u| u.count).sum::<u64>() >= unique.len() as u64);
//! ```

pub mod constraints;
pub mod import;
pub mod layer;
pub mod model;
pub mod zoo;

pub use constraints::{ModelClass, ThroughputTarget};
pub use import::{from_json_str, ImportError};
pub use layer::{LayerShape, OpKind, Tensor};
pub use model::{DnnModel, Layer, UniqueShape};
