//! Importing workloads from a human-writable JSON description — the
//! ingestion path that replaces the paper's PyTorch/Hugging Face export.
//!
//! The format is deliberately close to how frameworks dump operator lists:
//!
//! ```json
//! {
//!   "name": "MyNet",
//!   "target": { "fps": 30.0 },
//!   "layers": [
//!     { "name": "conv1", "op": "conv", "m": 64, "c": 3,
//!       "oy": 112, "ox": 112, "fy": 7, "fx": 7, "stride": 2 },
//!     { "name": "blocks", "op": "dwconv", "m": 64, "oy": 56, "ox": 56,
//!       "fy": 3, "fx": 3, "repeat": 4 },
//!     { "name": "fc", "op": "gemm", "m": 1000, "n": 1, "k": 512 }
//!   ]
//! }
//! ```
//!
//! Unspecified extents default to 1 (`n`, `stride` likewise), matching the
//! canonical loop-nest conventions of [`crate::layer::LayerShape`].

use crate::constraints::ThroughputTarget;
use crate::layer::LayerShape;
use crate::model::{DnnModel, Layer};
use serde::Deserialize;
use std::fmt;

/// Errors raised while importing a model description.
#[derive(Debug)]
pub enum ImportError {
    /// The JSON could not be parsed at all.
    Parse(serde_json::Error),
    /// A layer entry is structurally invalid.
    Layer {
        /// The layer's name (or index when unnamed).
        layer: String,
        /// What was wrong.
        reason: String,
    },
    /// The model-level fields are invalid (name/target/empty layer list).
    Model(String),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Parse(e) => write!(f, "invalid JSON: {e}"),
            ImportError::Layer { layer, reason } => {
                write!(f, "layer `{layer}`: {reason}")
            }
            ImportError::Model(reason) => write!(f, "model: {reason}"),
        }
    }
}

impl std::error::Error for ImportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImportError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

#[derive(Deserialize)]
struct ModelDoc {
    name: String,
    target: TargetDoc,
    layers: Vec<LayerDoc>,
}

#[derive(Deserialize)]
struct TargetDoc {
    #[serde(default)]
    fps: Option<f64>,
    #[serde(default)]
    qps: Option<f64>,
    #[serde(default)]
    audio_samples_per_second: Option<f64>,
    #[serde(default)]
    samples_per_inference: Option<f64>,
}

#[derive(Deserialize)]
struct LayerDoc {
    #[serde(default)]
    name: Option<String>,
    op: String,
    #[serde(default = "one")]
    n: u64,
    #[serde(default = "one")]
    m: u64,
    #[serde(default = "one")]
    c: u64,
    #[serde(default = "one")]
    oy: u64,
    #[serde(default = "one")]
    ox: u64,
    #[serde(default = "one")]
    fy: u64,
    #[serde(default = "one")]
    fx: u64,
    #[serde(default = "one")]
    stride: u64,
    /// GEMM reduction depth (alias preferred over `c` for GEMMs).
    #[serde(default)]
    k: Option<u64>,
    #[serde(default = "one")]
    repeat: u64,
}

fn one() -> u64 {
    1
}

/// Parses a model from its JSON description (see the module docs for the
/// format).
///
/// # Errors
///
/// Returns [`ImportError`] with the offending layer and reason on any
/// structural problem; extents of zero, unknown `op` tags, and missing
/// throughput targets are all rejected.
pub fn from_json_str(json: &str) -> Result<DnnModel, ImportError> {
    let doc: ModelDoc = serde_json::from_str(json).map_err(ImportError::Parse)?;
    if doc.name.trim().is_empty() {
        return Err(ImportError::Model("name must be non-empty".into()));
    }
    if doc.layers.is_empty() {
        return Err(ImportError::Model("at least one layer is required".into()));
    }

    let target = match (
        &doc.target.fps,
        &doc.target.qps,
        &doc.target.audio_samples_per_second,
    ) {
        (Some(fps), None, None) if *fps > 0.0 => ThroughputTarget::fps(*fps),
        (None, Some(qps), None) if *qps > 0.0 => ThroughputTarget::qps(*qps),
        (None, None, Some(sps)) if *sps > 0.0 => {
            let per = doc.target.samples_per_inference.unwrap_or(1.0);
            if per <= 0.0 {
                return Err(ImportError::Model(
                    "samples_per_inference must be positive".into(),
                ));
            }
            ThroughputTarget::audio_samples_per_second(*sps, per)
        }
        _ => {
            return Err(ImportError::Model(
                "target needs exactly one positive field of: fps, qps, \
                 audio_samples_per_second"
                    .into(),
            ))
        }
    };

    let mut layers = Vec::with_capacity(doc.layers.len());
    for (i, l) in doc.layers.iter().enumerate() {
        let name = l.name.clone().unwrap_or_else(|| format!("layer{i}"));
        let err = |reason: &str| ImportError::Layer {
            layer: name.clone(),
            reason: reason.into(),
        };
        let nonzero = [l.n, l.m, l.c, l.oy, l.ox, l.fy, l.fx, l.stride, l.repeat];
        if nonzero.contains(&0) {
            return Err(err("extents, stride and repeat must be non-zero"));
        }
        let shape = match l.op.as_str() {
            "conv" => LayerShape::conv(l.n, l.m, l.c, l.oy, l.ox, l.fy, l.fx, l.stride),
            "dwconv" => {
                if l.c != 1 {
                    return Err(err(
                        "depthwise layers must not set c (channels come from m)",
                    ));
                }
                LayerShape::dwconv(l.n, l.m, l.oy, l.ox, l.fy, l.fx, l.stride)
            }
            "gemm" => {
                let k = l.k.unwrap_or(l.c);
                if k == 0 {
                    return Err(err("gemm needs a non-zero reduction depth k"));
                }
                // GEMM output columns: `n` field doubles as the column count
                // (`ox` is accepted as an alias).
                let cols = if l.ox > 1 { l.ox } else { l.n };
                LayerShape::gemm(l.m, cols.max(1), k)
            }
            other => return Err(err(&format!("unknown op `{other}` (conv/dwconv/gemm)"))),
        };
        layers.push(Layer::new(name, shape, l.repeat));
    }
    Ok(DnnModel::new(doc.name, layers, target))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "name": "TinyNet",
        "target": { "fps": 30.0 },
        "layers": [
            { "name": "conv1", "op": "conv", "m": 16, "c": 3,
              "oy": 32, "ox": 32, "fy": 3, "fx": 3 },
            { "name": "dw", "op": "dwconv", "m": 16, "oy": 32, "ox": 32,
              "fy": 3, "fx": 3, "repeat": 2 },
            { "name": "fc", "op": "gemm", "m": 10, "n": 1, "k": 256 }
        ]
    }"#;

    #[test]
    fn sample_imports() {
        let m = from_json_str(SAMPLE).expect("valid sample");
        assert_eq!(m.name(), "TinyNet");
        assert_eq!(m.layer_count(), 4);
        assert_eq!(m.unique_shape_count(), 3);
        assert!((m.target().inferences_per_second() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn defaults_fill_unit_extents() {
        let m = from_json_str(
            r#"{"name":"g","target":{"qps":5.0},
                "layers":[{"op":"gemm","m":8,"n":4,"k":16}]}"#,
        )
        .unwrap();
        let s = m.layers()[0].shape;
        assert_eq!(s.dims(), [1, 8, 16, 1, 4, 1, 1]);
    }

    #[test]
    fn zero_extent_rejected_with_layer_name() {
        let e = from_json_str(
            r#"{"name":"x","target":{"fps":1.0},
                "layers":[{"name":"bad","op":"conv","m":0,"c":1,"oy":1,"ox":1}]}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("bad"), "{e}");
    }

    #[test]
    fn unknown_op_rejected() {
        let e = from_json_str(
            r#"{"name":"x","target":{"fps":1.0},
                "layers":[{"op":"pool","m":1}]}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("unknown op"), "{e}");
    }

    #[test]
    fn missing_target_rejected() {
        let e = from_json_str(
            r#"{"name":"x","target":{},
                "layers":[{"op":"gemm","m":2,"n":2,"k":2}]}"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("target"), "{e}");
    }

    #[test]
    fn audio_target_supported() {
        let m = from_json_str(
            r#"{"name":"asr","target":{"audio_samples_per_second":16000.0,
                "samples_per_inference":16000.0},
                "layers":[{"op":"gemm","m":2,"n":2,"k":2}]}"#,
        )
        .unwrap();
        assert!((m.target().inferences_per_second() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn malformed_json_reports_parse_error() {
        assert!(matches!(from_json_str("{"), Err(ImportError::Parse(_))));
    }
}
