//! VGG-16 for ImageNet classification (224x224 input): 13 convolutions and
//! three fully-connected layers.

use crate::constraints::ThroughputTarget;
use crate::layer::LayerShape;
use crate::model::{DnnModel, Layer};

/// VGG-16: 16 weighted layers. Large vision model: 10 FPS floor.
pub fn vgg16() -> DnnModel {
    let l = |name: &str, s, r| Layer::new(name, s, r);
    DnnModel::new(
        "VGG16",
        vec![
            l("conv1_1", LayerShape::conv(1, 64, 3, 224, 224, 3, 3, 1), 1),
            l("conv1_2", LayerShape::conv(1, 64, 64, 224, 224, 3, 3, 1), 1),
            l(
                "conv2_1",
                LayerShape::conv(1, 128, 64, 112, 112, 3, 3, 1),
                1,
            ),
            l(
                "conv2_2",
                LayerShape::conv(1, 128, 128, 112, 112, 3, 3, 1),
                1,
            ),
            l("conv3_1", LayerShape::conv(1, 256, 128, 56, 56, 3, 3, 1), 1),
            l("conv3_2", LayerShape::conv(1, 256, 256, 56, 56, 3, 3, 1), 2),
            l("conv4_1", LayerShape::conv(1, 512, 256, 28, 28, 3, 3, 1), 1),
            l("conv4_2", LayerShape::conv(1, 512, 512, 28, 28, 3, 3, 1), 2),
            l("conv5_x", LayerShape::conv(1, 512, 512, 14, 14, 3, 3, 1), 3),
            l("fc6", LayerShape::gemm(4096, 1, 25088), 1),
            l("fc7", LayerShape::gemm(4096, 1, 4096), 1),
            l("fc8", LayerShape::gemm(1000, 1, 4096), 1),
        ],
        ThroughputTarget::fps(10.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_convs_three_fcs() {
        let m = vgg16();
        use crate::layer::OpKind;
        let convs: u64 = m
            .layers()
            .iter()
            .filter(|l| l.shape.kind() == OpKind::Conv)
            .map(|l| l.repeat)
            .sum();
        let gemms: u64 = m
            .layers()
            .iter()
            .filter(|l| l.shape.kind() == OpKind::Gemm)
            .map(|l| l.repeat)
            .sum();
        assert_eq!((convs, gemms), (13, 3));
    }
}
