//! ResNet-18 and ResNet-50 for ImageNet classification (224x224 input).

use crate::constraints::ThroughputTarget;
use crate::layer::LayerShape;
use crate::model::{DnnModel, Layer};

/// ResNet-18: 18 weighted layers (conv1, 16 block convolutions, fc), nine
/// unique tensor shapes — exactly the structure the paper's walkthrough
/// (Fig. 6) uses. Light vision model: 40 FPS floor.
pub fn resnet18() -> DnnModel {
    let l = |name: &str, s, r| Layer::new(name, s, r);
    DnnModel::new(
        "ResNet18",
        vec![
            l("conv1", LayerShape::conv(1, 64, 3, 112, 112, 7, 7, 2), 1),
            l(
                "layer1.conv",
                LayerShape::conv(1, 64, 64, 56, 56, 3, 3, 1),
                4,
            ),
            l(
                "layer2.0.down",
                LayerShape::conv(1, 128, 64, 28, 28, 3, 3, 2),
                1,
            ),
            l(
                "layer2.conv",
                LayerShape::conv(1, 128, 128, 28, 28, 3, 3, 1),
                3,
            ),
            l(
                "layer3.0.down",
                LayerShape::conv(1, 256, 128, 14, 14, 3, 3, 2),
                1,
            ),
            l(
                "layer3.conv",
                LayerShape::conv(1, 256, 256, 14, 14, 3, 3, 1),
                3,
            ),
            l(
                "layer4.0.down",
                LayerShape::conv(1, 512, 256, 7, 7, 3, 3, 2),
                1,
            ),
            l(
                "layer4.conv",
                LayerShape::conv(1, 512, 512, 7, 7, 3, 3, 1),
                3,
            ),
            l("fc", LayerShape::gemm(1000, 1, 512), 1),
        ],
        ThroughputTarget::fps(40.0),
    )
}

/// ResNet-50: conv1 + 16 bottleneck blocks (3 convs each) + 4 projection
/// downsamples + fc = 54 layers, matching the paper's count. Large vision
/// model: 10 FPS floor.
pub fn resnet50() -> DnnModel {
    let l = |name: &str, s, r| Layer::new(name, s, r);
    let mut layers = vec![l("conv1", LayerShape::conv(1, 64, 3, 112, 112, 7, 7, 2), 1)];

    // (width, in_planes_on_entry, out_planes, blocks, output_hw, entry_hw)
    // Stage entry blocks reduce spatially in the 3x3 conv (torchvision v1.5
    // convention) and add a 1x1 projection on the shortcut.
    struct Stage {
        tag: &'static str,
        width: u64,
        in_planes: u64,
        blocks: u64,
        hw: u64,
        entry_stride: u64,
    }
    let stages = [
        Stage {
            tag: "layer1",
            width: 64,
            in_planes: 64,
            blocks: 3,
            hw: 56,
            entry_stride: 1,
        },
        Stage {
            tag: "layer2",
            width: 128,
            in_planes: 256,
            blocks: 4,
            hw: 28,
            entry_stride: 2,
        },
        Stage {
            tag: "layer3",
            width: 256,
            in_planes: 512,
            blocks: 6,
            hw: 14,
            entry_stride: 2,
        },
        Stage {
            tag: "layer4",
            width: 512,
            in_planes: 1024,
            blocks: 3,
            hw: 7,
            entry_stride: 2,
        },
    ];
    for s in stages {
        let out_planes = s.width * 4;
        let entry_hw = s.hw * s.entry_stride;
        // Entry block: 1x1 reduce (at the larger feature map), strided 3x3,
        // 1x1 expand, plus the projection shortcut.
        layers.push(l(
            &format!("{}.0.conv1", s.tag),
            LayerShape::conv(1, s.width, s.in_planes, entry_hw, entry_hw, 1, 1, 1),
            1,
        ));
        layers.push(l(
            &format!("{}.0.conv2", s.tag),
            LayerShape::conv(1, s.width, s.width, s.hw, s.hw, 3, 3, s.entry_stride),
            1,
        ));
        layers.push(l(
            &format!("{}.0.conv3", s.tag),
            LayerShape::conv(1, out_planes, s.width, s.hw, s.hw, 1, 1, 1),
            1,
        ));
        layers.push(l(
            &format!("{}.0.downsample", s.tag),
            LayerShape::conv(1, out_planes, s.in_planes, s.hw, s.hw, 1, 1, s.entry_stride),
            1,
        ));
        // Remaining identity blocks.
        let rest = s.blocks - 1;
        layers.push(l(
            &format!("{}.x.conv1", s.tag),
            LayerShape::conv(1, s.width, out_planes, s.hw, s.hw, 1, 1, 1),
            rest,
        ));
        layers.push(l(
            &format!("{}.x.conv2", s.tag),
            LayerShape::conv(1, s.width, s.width, s.hw, s.hw, 3, 3, 1),
            rest,
        ));
        layers.push(l(
            &format!("{}.x.conv3", s.tag),
            LayerShape::conv(1, out_planes, s.width, s.hw, s.hw, 1, 1, 1),
            rest,
        ));
    }
    layers.push(l("fc", LayerShape::gemm(1000, 1, 2048), 1));
    DnnModel::new("ResNet50", layers, ThroughputTarget::fps(10.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_macs_in_published_range() {
        let m = resnet50();
        let gmacs = m.total_macs() as f64 / 1e9;
        // ~4.1 GMACs for ResNet50 (halo accounting adds a little).
        assert!((3.6..4.6).contains(&gmacs), "ResNet50 GMACs {gmacs}");
    }

    #[test]
    fn resnet18_has_conv5_2b_equivalent() {
        // The paper's toy example (Fig. 4) explores a late ResNet CONV layer;
        // our layer4.conv (512 ch, 7x7) is that shape class.
        let m = resnet18();
        assert!(m.layers().iter().any(|l| l.name == "layer4.conv"));
    }
}
