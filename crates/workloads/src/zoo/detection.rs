//! Object-detection models: FasterRCNN-MobileNetV3-Large-FPN and YOLOv5.

use crate::constraints::ThroughputTarget;
use crate::layer::LayerShape;
use crate::model::{DnnModel, Layer};

/// One MobileNetV3 inverted-residual block with optional SE.
#[allow(clippy::too_many_arguments)]
fn mnv3_block(
    layers: &mut Vec<Layer>,
    tag: &str,
    c_in: u64,
    exp: u64,
    c_out: u64,
    k: u64,
    se: bool,
    hw_in: u64,
    s: u64,
) {
    let hw_out = hw_in / s;
    if exp != c_in {
        layers.push(Layer::new(
            format!("{tag}.expand"),
            LayerShape::conv(1, exp, c_in, hw_in, hw_in, 1, 1, 1),
            1,
        ));
    }
    layers.push(Layer::new(
        format!("{tag}.dw"),
        LayerShape::dwconv(1, exp, hw_out, hw_out, k, k, s),
        1,
    ));
    if se {
        let c_se = (exp / 4).max(8);
        layers.push(Layer::new(
            format!("{tag}.se_reduce"),
            LayerShape::conv(1, c_se, exp, 1, 1, 1, 1, 1),
            1,
        ));
        layers.push(Layer::new(
            format!("{tag}.se_expand"),
            LayerShape::conv(1, exp, c_se, 1, 1, 1, 1, 1),
            1,
        ));
    }
    layers.push(Layer::new(
        format!("{tag}.project"),
        LayerShape::conv(1, c_out, exp, hw_out, hw_out, 1, 1, 1),
        1,
    ));
}

/// FasterRCNN with a MobileNetV3-Large backbone and FPN, low-resolution
/// (320x320) edge variant. Backbone stem + 15 blocks + last conv, FPN
/// lateral/output convolutions, RPN head, and the box head — 78 weighted
/// layers (paper counts 79). Light vision model: 40 FPS floor.
pub fn fasterrcnn_mobilenetv3() -> DnnModel {
    let mut layers = vec![Layer::new(
        "backbone.stem",
        LayerShape::conv(1, 16, 3, 160, 160, 3, 3, 2),
        1,
    )];
    // (exp, c_out, k, se, stride) — MobileNetV3-Large at 320 input.
    let cfg: [(u64, u64, u64, bool, u64); 15] = [
        (16, 16, 3, false, 1),
        (64, 24, 3, false, 2),
        (72, 24, 3, false, 1),
        (72, 40, 5, true, 2),
        (120, 40, 5, true, 1),
        (120, 40, 5, true, 1),
        (240, 80, 3, false, 2),
        (200, 80, 3, false, 1),
        (184, 80, 3, false, 1),
        (184, 80, 3, false, 1),
        (480, 112, 3, true, 1),
        (672, 112, 3, true, 1),
        (672, 160, 5, true, 2),
        (960, 160, 5, true, 1),
        (960, 160, 5, true, 1),
    ];
    let mut c_in = 16;
    let mut hw = 160;
    for (i, (exp, c_out, k, se, s)) in cfg.into_iter().enumerate() {
        mnv3_block(
            &mut layers,
            &format!("backbone.block{i}"),
            c_in,
            exp,
            c_out,
            k,
            se,
            hw,
            s,
        );
        hw /= s;
        c_in = c_out;
    }
    layers.push(Layer::new(
        "backbone.last",
        LayerShape::conv(1, 960, 160, 10, 10, 1, 1, 1),
        1,
    ));
    // FPN: two lateral 1x1 convs (C4 at 20x20 with 112ch, C5 at 10x10 with
    // 960ch) and two 3x3 output convs at 256 channels.
    layers.push(Layer::new(
        "fpn.lateral_c4",
        LayerShape::conv(1, 256, 112, 20, 20, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        "fpn.lateral_c5",
        LayerShape::conv(1, 256, 960, 10, 10, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        "fpn.out_p4",
        LayerShape::conv(1, 256, 256, 20, 20, 3, 3, 1),
        1,
    ));
    layers.push(Layer::new(
        "fpn.out_p5",
        LayerShape::conv(1, 256, 256, 10, 10, 3, 3, 1),
        1,
    ));
    // RPN head on the P4 level: shared conv + objectness + box deltas.
    layers.push(Layer::new(
        "rpn.conv",
        LayerShape::conv(1, 256, 256, 20, 20, 3, 3, 1),
        1,
    ));
    layers.push(Layer::new(
        "rpn.cls",
        LayerShape::conv(1, 15, 256, 20, 20, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        "rpn.bbox",
        LayerShape::conv(1, 60, 256, 20, 20, 1, 1, 1),
        1,
    ));
    // Box head over pooled 7x7 RoIs (batched across proposals: N=64 RoIs).
    layers.push(Layer::new(
        "roi.fc6",
        LayerShape::gemm(1024, 64, 256 * 49),
        1,
    ));
    layers.push(Layer::new("roi.fc7", LayerShape::gemm(1024, 64, 1024), 1));
    layers.push(Layer::new(
        "roi.cls_score",
        LayerShape::gemm(91, 64, 1024),
        1,
    ));
    layers.push(Layer::new(
        "roi.bbox_pred",
        LayerShape::gemm(364, 64, 1024),
        1,
    ));
    DnnModel::new(
        "FasterRCNN-MobileNetV3",
        layers,
        ThroughputTarget::fps(40.0),
    )
}

/// One YOLOv5 C3 (cross-stage partial) block: two entry 1x1 convs, `n`
/// bottlenecks of (1x1, 3x3), and a fusing 1x1 conv.
fn c3_block(layers: &mut Vec<Layer>, tag: &str, c: u64, n: u64, hw: u64) {
    let half = c / 2;
    layers.push(Layer::new(
        format!("{tag}.cv1"),
        LayerShape::conv(1, half, c, hw, hw, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        format!("{tag}.cv2"),
        LayerShape::conv(1, half, c, hw, hw, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        format!("{tag}.m.cv1"),
        LayerShape::conv(1, half, half, hw, hw, 1, 1, 1),
        n,
    ));
    layers.push(Layer::new(
        format!("{tag}.m.cv2"),
        LayerShape::conv(1, half, half, hw, hw, 3, 3, 1),
        n,
    ));
    layers.push(Layer::new(
        format!("{tag}.cv3"),
        LayerShape::conv(1, c, c, hw, hw, 1, 1, 1),
        1,
    ));
}

/// YOLOv5 (medium-depth detection variant, 640x640 input): stem, four
/// backbone stages with C3 blocks, SPPF, PANet neck, and three detection
/// convolutions — 60 weighted layers, matching the paper's count. Large
/// vision model: 10 FPS floor.
pub fn yolov5() -> DnnModel {
    let mut layers = vec![Layer::new(
        "stem",
        LayerShape::conv(1, 48, 3, 320, 320, 6, 6, 2),
        1,
    )];
    // Backbone: (channels, c3_bottlenecks, hw after downsample).
    let stages: [(u64, u64, u64); 4] = [(96, 1, 160), (192, 2, 80), (384, 3, 40), (768, 1, 20)];
    let mut c_in = 48;
    for (i, (c, n, hw)) in stages.into_iter().enumerate() {
        layers.push(Layer::new(
            format!("backbone.down{i}"),
            LayerShape::conv(1, c, c_in, hw, hw, 3, 3, 2),
            1,
        ));
        c3_block(&mut layers, &format!("backbone.c3_{i}"), c, n, hw);
        c_in = c;
    }
    // SPPF: two 1x1 convs around pooling.
    layers.push(Layer::new(
        "sppf.cv1",
        LayerShape::conv(1, 384, 768, 20, 20, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        "sppf.cv2",
        LayerShape::conv(1, 768, 1536, 20, 20, 1, 1, 1),
        1,
    ));
    // PANet neck: top-down then bottom-up, C3 blocks with n=1.
    layers.push(Layer::new(
        "neck.reduce0",
        LayerShape::conv(1, 384, 768, 20, 20, 1, 1, 1),
        1,
    ));
    c3_block(&mut layers, "neck.c3_td0", 384, 1, 40);
    layers.push(Layer::new(
        "neck.reduce1",
        LayerShape::conv(1, 192, 384, 40, 40, 1, 1, 1),
        1,
    ));
    c3_block(&mut layers, "neck.c3_td1", 192, 1, 80);
    layers.push(Layer::new(
        "neck.down0",
        LayerShape::conv(1, 192, 192, 40, 40, 3, 3, 2),
        1,
    ));
    c3_block(&mut layers, "neck.c3_bu0", 384, 1, 40);
    layers.push(Layer::new(
        "neck.down1",
        LayerShape::conv(1, 384, 384, 20, 20, 3, 3, 2),
        1,
    ));
    c3_block(&mut layers, "neck.c3_bu1", 768, 1, 20);
    // Detect heads on P3/P4/P5.
    layers.push(Layer::new(
        "detect.p3",
        LayerShape::conv(1, 255, 192, 80, 80, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        "detect.p4",
        LayerShape::conv(1, 255, 384, 40, 40, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        "detect.p5",
        LayerShape::conv(1, 255, 768, 20, 20, 1, 1, 1),
        1,
    ));
    DnnModel::new("YOLOv5", layers, ThroughputTarget::fps(10.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yolov5_counts_sixty_layers() {
        assert_eq!(yolov5().layer_count(), 60);
    }

    #[test]
    fn fasterrcnn_layer_count_near_paper() {
        let n = fasterrcnn_mobilenetv3().layer_count();
        assert!((70..=79).contains(&n), "got {n} layers (paper: 79)");
    }

    #[test]
    fn detection_models_have_large_feature_maps() {
        let y = yolov5();
        assert!(y.layers().iter().any(|l| l.shape.dims()[3] >= 160));
    }
}
