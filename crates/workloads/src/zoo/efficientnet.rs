//! EfficientNet-B0 for ImageNet classification (224x224 input).

use crate::constraints::ThroughputTarget;
use crate::layer::LayerShape;
use crate::model::{DnnModel, Layer};

/// One MBConv block with squeeze-and-excitation: optional expand 1x1,
/// depthwise kxk, SE reduce/expand (1x1 over pooled activations), project
/// 1x1. SE ratio is 0.25 of the block *input* channels as in the reference
/// implementation.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    layers: &mut Vec<Layer>,
    tag: &str,
    c_in: u64,
    c_out: u64,
    expand: u64,
    k: u64,
    hw_in: u64,
    s: u64,
) {
    let c_mid = c_in * expand;
    let c_se = (c_in / 4).max(1);
    let hw_out = hw_in / s;
    if expand != 1 {
        layers.push(Layer::new(
            format!("{tag}.expand"),
            LayerShape::conv(1, c_mid, c_in, hw_in, hw_in, 1, 1, 1),
            1,
        ));
    }
    layers.push(Layer::new(
        format!("{tag}.dw"),
        LayerShape::dwconv(1, c_mid, hw_out, hw_out, k, k, s),
        1,
    ));
    // SE operates on globally pooled activations: 1x1 spatial extent.
    layers.push(Layer::new(
        format!("{tag}.se_reduce"),
        LayerShape::conv(1, c_se, c_mid, 1, 1, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        format!("{tag}.se_expand"),
        LayerShape::conv(1, c_mid, c_se, 1, 1, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new(
        format!("{tag}.project"),
        LayerShape::conv(1, c_out, c_mid, hw_out, hw_out, 1, 1, 1),
        1,
    ));
}

/// EfficientNet-B0: stem, 16 MBConv blocks (first without expansion, each
/// with an SE pair), head conv, classifier — 82 weighted layers, matching
/// the paper's count. Light vision model: 40 FPS floor.
pub fn efficientnet_b0() -> DnnModel {
    let mut layers = vec![Layer::new(
        "stem",
        LayerShape::conv(1, 32, 3, 112, 112, 3, 3, 2),
        1,
    )];
    // (expand, c_out, repeats, first_stride, kernel); input 32ch at 112x112.
    let cfg: [(u64, u64, u64, u64, u64); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut c_in = 32;
    let mut hw = 112;
    let mut idx = 0;
    for (expand, c_out, repeats, first_stride, k) in cfg {
        for r in 0..repeats {
            let s = if r == 0 { first_stride } else { 1 };
            mbconv(
                &mut layers,
                &format!("blocks.{idx}"),
                c_in,
                c_out,
                expand,
                k,
                hw,
                s,
            );
            hw /= s;
            c_in = c_out;
            idx += 1;
        }
    }
    layers.push(Layer::new(
        "head",
        LayerShape::conv(1, 1280, 320, 7, 7, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new("fc", LayerShape::gemm(1000, 1, 1280), 1));
    DnnModel::new("EfficientNetB0", layers, ThroughputTarget::fps(40.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_blocks_with_se_pairs() {
        let m = efficientnet_b0();
        let se = m
            .layers()
            .iter()
            .filter(|l| l.name.contains("se_reduce"))
            .count();
        assert_eq!(se, 16);
    }

    #[test]
    fn mixed_kernel_sizes_present() {
        let m = efficientnet_b0();
        let has_k5 = m.layers().iter().any(|l| l.shape.dims()[5] == 5);
        assert!(has_k5, "EfficientNet uses 5x5 depthwise kernels");
    }
}
