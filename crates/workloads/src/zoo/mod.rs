//! The eleven DNNs evaluated by the paper, encoded as operator tables.
//!
//! Shapes follow the published architectures (torchvision / Hugging Face
//! reference implementations). Where the paper's layer counting merges or
//! splits operators differently than we do (e.g. attention batched matmuls),
//! the deviation is noted on the model constructor; EXPERIMENTS.md records
//! the achieved counts next to the paper's.

mod detection;
mod efficientnet;
mod mobilenet;
mod nlp;
mod resnet;
mod vgg;
mod vit;

pub use detection::{fasterrcnn_mobilenetv3, yolov5};
pub use efficientnet::efficientnet_b0;
pub use mobilenet::mobilenet_v2;
pub use nlp::{bert_base, transformer, wav2vec2};
pub use resnet::{resnet18, resnet50};
pub use vgg::vgg16;
pub use vit::vit_b16;

use crate::model::DnnModel;

/// All eleven models in the paper's order (Fig. 9 / Table 2 columns).
pub fn all_models() -> Vec<DnnModel> {
    vec![
        resnet18(),
        mobilenet_v2(),
        efficientnet_b0(),
        vgg16(),
        resnet50(),
        vit_b16(),
        fasterrcnn_mobilenetv3(),
        yolov5(),
        transformer(),
        bert_base(),
        wav2vec2(),
    ]
}

/// Looks a model up by its (case-insensitive) name.
///
/// Returns `None` for unknown names. Accepted names are the `name()` values
/// of [`all_models`], e.g. `"ResNet18"`, `"BERT"`.
pub fn by_name(name: &str) -> Option<DnnModel> {
    let lower = name.to_ascii_lowercase();
    all_models()
        .into_iter()
        .find(|m| m.name().to_ascii_lowercase() == lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_models_with_unique_names() {
        let models = all_models();
        assert_eq!(models.len(), 11);
        let mut names: Vec<_> = models.iter().map(|m| m.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("resnet18").is_some());
        assert!(by_name("ReSNet18").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_models_have_positive_macs_and_targets() {
        for m in all_models() {
            assert!(m.total_macs() > 0, "{} has zero MACs", m.name());
            assert!(m.target().inferences_per_second() > 0.0);
            assert!(
                m.unique_shape_count() >= 3,
                "{} suspiciously few shapes",
                m.name()
            );
        }
    }

    #[test]
    fn resnet18_matches_paper_structure() {
        let m = resnet18();
        assert_eq!(m.layer_count(), 18, "paper counts 18 layers for ResNet18");
        assert_eq!(
            m.unique_shape_count(),
            9,
            "paper: nine unique tensor shapes"
        );
        // ~1.8 GMACs for ResNet18 at 224x224.
        let gmacs = m.total_macs() as f64 / 1e9;
        assert!((1.5..2.2).contains(&gmacs), "ResNet18 GMACs {gmacs}");
    }

    #[test]
    fn vgg16_macs_are_in_published_range() {
        let m = vgg16();
        assert_eq!(m.layer_count(), 16);
        let gmacs = m.total_macs() as f64 / 1e9;
        assert!((14.0..16.5).contains(&gmacs), "VGG16 GMACs {gmacs}");
    }

    #[test]
    fn resnet50_layer_count() {
        assert_eq!(
            resnet50().layer_count(),
            54,
            "conv1 + 48 block convs + 4 downsamples + fc"
        );
    }

    #[test]
    fn mobilenet_v2_layer_count_and_macs() {
        let m = mobilenet_v2();
        assert_eq!(m.layer_count(), 53);
        let gmacs = m.total_macs() as f64 / 1e9;
        assert!((0.25..0.40).contains(&gmacs), "MobileNetV2 GMACs {gmacs}");
    }

    #[test]
    fn efficientnet_b0_layer_count_and_macs() {
        let m = efficientnet_b0();
        assert_eq!(m.layer_count(), 82);
        let gmacs = m.total_macs() as f64 / 1e9;
        assert!((0.3..0.5).contains(&gmacs), "EfficientNetB0 GMACs {gmacs}");
    }

    #[test]
    fn bert_layer_count_matches_paper() {
        assert_eq!(
            bert_base().layer_count(),
            85,
            "12 x 7 encoder ops + QA head"
        );
    }

    #[test]
    fn vit_layer_count_matches_paper() {
        assert_eq!(vit_b16().layer_count(), 86, "patch embed + 12 x 7 + head");
    }

    #[test]
    fn nlp_models_have_language_targets() {
        use crate::constraints::ModelClass;
        for m in [transformer(), bert_base(), wav2vec2()] {
            assert_eq!(m.target().class(), ModelClass::Language, "{}", m.name());
        }
    }
}
