//! MobileNetV2 for ImageNet classification (224x224 input).

use crate::constraints::ThroughputTarget;
use crate::layer::LayerShape;
use crate::model::{DnnModel, Layer};

/// One inverted-residual block: optional expand 1x1, depthwise 3x3, project
/// 1x1. `hw_in` is the input feature-map size, `s` the depthwise stride.
fn inverted_residual(
    layers: &mut Vec<Layer>,
    tag: &str,
    c_in: u64,
    c_out: u64,
    expand: u64,
    hw_in: u64,
    s: u64,
) {
    let c_mid = c_in * expand;
    let hw_out = hw_in / s;
    if expand != 1 {
        layers.push(Layer::new(
            format!("{tag}.expand"),
            LayerShape::conv(1, c_mid, c_in, hw_in, hw_in, 1, 1, 1),
            1,
        ));
    }
    layers.push(Layer::new(
        format!("{tag}.dw"),
        LayerShape::dwconv(1, c_mid, hw_out, hw_out, 3, 3, s),
        1,
    ));
    layers.push(Layer::new(
        format!("{tag}.project"),
        LayerShape::conv(1, c_out, c_mid, hw_out, hw_out, 1, 1, 1),
        1,
    ));
}

/// MobileNetV2: stem conv, 17 inverted-residual blocks (the first without
/// expansion), final 1280-channel conv and classifier — 53 weighted layers,
/// matching the paper's count. Light vision model: 40 FPS floor.
pub fn mobilenet_v2() -> DnnModel {
    let mut layers = vec![Layer::new(
        "stem",
        LayerShape::conv(1, 32, 3, 112, 112, 3, 3, 2),
        1,
    )];
    // (expand, c_out, repeats, first_stride), input starts at 32ch 112x112.
    let cfg: [(u64, u64, u64, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut c_in = 32;
    let mut hw = 112;
    let mut idx = 0;
    for (expand, c_out, repeats, first_stride) in cfg {
        for r in 0..repeats {
            let s = if r == 0 { first_stride } else { 1 };
            inverted_residual(
                &mut layers,
                &format!("block{idx}"),
                c_in,
                c_out,
                expand,
                hw,
                s,
            );
            hw /= s;
            c_in = c_out;
            idx += 1;
        }
    }
    layers.push(Layer::new(
        "head",
        LayerShape::conv(1, 1280, 320, 7, 7, 1, 1, 1),
        1,
    ));
    layers.push(Layer::new("fc", LayerShape::gemm(1000, 1, 1280), 1));
    DnnModel::new("MobileNetV2", layers, ThroughputTarget::fps(40.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::OpKind;

    #[test]
    fn has_seventeen_depthwise_convs() {
        let m = mobilenet_v2();
        let dws = m
            .layers()
            .iter()
            .filter(|l| l.shape.kind() == OpKind::DepthwiseConv)
            .count();
        assert_eq!(dws, 17);
    }

    #[test]
    fn feature_map_ends_at_seven() {
        let m = mobilenet_v2();
        let head = m.layers().iter().find(|l| l.name == "head").unwrap();
        assert_eq!(head.shape.dims()[3], 7);
    }
}
