//! Language models: Transformer (En-De translation), BERT-base (SQuAD Q&A),
//! and wav2vec 2.0 (speech recognition).

use crate::constraints::ThroughputTarget;
use crate::layer::LayerShape;
use crate::model::{DnnModel, Layer};
use crate::zoo::vit::encoder_block;

/// Appends a decoder block: self-attention (5 ops), cross-attention (5 ops),
/// and the two FFN GEMMs. `src` / `tgt` are source and target sequence
/// lengths.
fn decoder_block(layers: &mut Vec<Layer>, tag: &str, src: u64, tgt: u64, d: u64, ffn: u64) {
    let l = |name: String, s| Layer::new(name, s, 1);
    // Self-attention over the target sequence.
    layers.push(l(format!("{tag}.self.q"), LayerShape::gemm(d, tgt, d)));
    layers.push(l(format!("{tag}.self.k"), LayerShape::gemm(d, tgt, d)));
    layers.push(l(format!("{tag}.self.v"), LayerShape::gemm(d, tgt, d)));
    layers.push(l(
        format!("{tag}.self.attn"),
        LayerShape::gemm(tgt, tgt, 2 * d),
    ));
    layers.push(l(format!("{tag}.self.proj"), LayerShape::gemm(d, tgt, d)));
    // Cross-attention: queries from target, keys/values from source.
    layers.push(l(format!("{tag}.cross.q"), LayerShape::gemm(d, tgt, d)));
    layers.push(l(format!("{tag}.cross.k"), LayerShape::gemm(d, src, d)));
    layers.push(l(format!("{tag}.cross.v"), LayerShape::gemm(d, src, d)));
    layers.push(l(
        format!("{tag}.cross.attn"),
        LayerShape::gemm(tgt, src, 2 * d),
    ));
    layers.push(l(format!("{tag}.cross.proj"), LayerShape::gemm(d, tgt, d)));
    layers.push(l(format!("{tag}.ffn1"), LayerShape::gemm(ffn, tgt, d)));
    layers.push(l(format!("{tag}.ffn2"), LayerShape::gemm(d, tgt, ffn)));
}

/// Transformer-base for English-German sentence translation: 6 encoder
/// blocks (7 ops each), 6 decoder blocks (12 ops each), and the vocabulary
/// output projection. d=512, FFN 2048, heads 8, sequence length 64.
///
/// The vocabulary is rounded from the 37k BPE merges of the original model
/// to 36864 (= 2^12 * 9) so the projection has a rich divisor structure for
/// tiling; the paper's own Table 7 analyzes this `decoder.output_projection`
/// layer.
///
/// Throughput floor: 120 samples/second, interpreted at token granularity
/// (one forward pass produces 64 target tokens). The paper's own reported
/// Transformer latencies (~76 ms) are only consistent with its 120/s floor
/// under this interpretation.
pub fn transformer() -> DnnModel {
    let (src, tgt, d, ffn) = (64, 64, 512, 2048);
    let mut layers = Vec::new();
    for b in 0..6 {
        encoder_block(&mut layers, &format!("encoder.{b}"), src, d, ffn);
    }
    for b in 0..6 {
        decoder_block(&mut layers, &format!("decoder.{b}"), src, tgt, d, ffn);
    }
    layers.push(Layer::new(
        "decoder.output_projection",
        LayerShape::gemm(36864, tgt, d),
        1,
    ));
    // 120 token-level samples/s over 64 tokens per pass.
    DnnModel::new(
        "Transformer",
        layers,
        ThroughputTarget::qps(120.0 / tgt as f64),
    )
}

/// BERT-base-uncased for Q&A on SQuAD: 12 encoder blocks of seven ops plus
/// the span-prediction head — 85 layers, matching the paper's count.
/// d=768, FFN 3072, sequence length 384.
///
/// Throughput floor: 530 samples/second at token granularity (one pass
/// covers a 384-token sequence); the paper's reported BERT latencies
/// (~121 ms) are only consistent with its floor under this interpretation.
pub fn bert_base() -> DnnModel {
    let (seq, d, ffn) = (384, 768, 3072);
    let mut layers = Vec::new();
    for b in 0..12 {
        encoder_block(&mut layers, &format!("encoder.layer.{b}"), seq, d, ffn);
    }
    layers.push(Layer::new("qa_outputs", LayerShape::gemm(2, seq, d), 1));
    // 530 token-level samples/s over a 384-token sequence per pass.
    DnnModel::new("BERT", layers, ThroughputTarget::qps(530.0 / seq as f64))
}

/// wav2vec 2.0 (base) for automatic speech recognition over one second of
/// 16 kHz audio: a seven-layer 1-D convolutional feature extractor
/// (sequence lengths rounded to divisor-rich values), feature projection,
/// positional convolution, 12 transformer blocks, and the character LM
/// head. Throughput floor: 176 000 audio samples/second at 16 000 samples
/// per inference (= 11 inferences/s).
pub fn wav2vec2() -> DnnModel {
    let mut layers = Vec::new();
    // 1-D convolutions expressed with OY=1. (channels, k, stride, out_len);
    // nominal 16 kHz input rounded so lengths stay divisor-rich.
    let fe: [(u64, u64, u64, u64); 7] = [
        (512, 10, 5, 3200),
        (512, 3, 2, 1600),
        (512, 3, 2, 800),
        (512, 3, 2, 400),
        (512, 3, 2, 200),
        (512, 2, 2, 100),
        (512, 2, 2, 50),
    ];
    let mut c_in = 1;
    for (i, (c, k, s, out)) in fe.into_iter().enumerate() {
        layers.push(Layer::new(
            format!("feature_extractor.conv{i}"),
            LayerShape::conv(1, c, c_in, 1, out, 1, k, s),
            1,
        ));
        c_in = c;
    }
    let (seq, d, ffn) = (50, 768, 3072);
    layers.push(Layer::new(
        "feature_projection",
        LayerShape::gemm(d, seq, 512),
        1,
    ));
    // Grouped positional convolution (16 groups, kernel 128) approximated as
    // a depthwise-style conv over the embedding channels.
    layers.push(Layer::new(
        "pos_conv",
        LayerShape::conv(1, d, d / 16, 1, seq, 1, 128, 1),
        1,
    ));
    for b in 0..12 {
        encoder_block(&mut layers, &format!("encoder.layers.{b}"), seq, d, ffn);
    }
    layers.push(Layer::new("lm_head", LayerShape::gemm(32, seq, d), 1));
    DnnModel::new(
        "Wav2Vec2",
        layers,
        ThroughputTarget::audio_samples_per_second(176_000.0, 16_000.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformer_output_projection_dominates() {
        let m = transformer();
        let proj = m
            .layers()
            .iter()
            .find(|l| l.name == "decoder.output_projection")
            .unwrap();
        // The vocabulary projection is the single largest GEMM.
        let max_macs = m.layers().iter().map(|l| l.shape.macs()).max().unwrap();
        assert_eq!(proj.shape.macs(), max_macs);
    }

    #[test]
    fn transformer_layer_count_is_recorded() {
        // 6*7 + 6*12 + 1 = 115 ops at our attention-fused granularity
        // (paper counts 163 with per-head/batched ops split out).
        assert_eq!(transformer().layer_count(), 115);
    }

    #[test]
    fn wav2vec2_feature_extractor_shrinks_sequence() {
        let m = wav2vec2();
        let first = &m.layers()[0];
        let last_fe = &m.layers()[6];
        assert!(first.shape.dims()[4] > last_fe.shape.dims()[4]);
        assert_eq!(last_fe.shape.dims()[4], 50);
    }

    #[test]
    fn wav2vec2_layer_count_is_recorded() {
        // 7 FE convs + projection + pos conv + 12*7 + head = 94 ops at our
        // granularity (paper counts 109).
        assert_eq!(wav2vec2().layer_count(), 94);
    }

    #[test]
    fn bert_sequence_is_squad_length() {
        let m = bert_base();
        let q = m.layers().iter().find(|l| l.name.ends_with(".q")).unwrap();
        assert_eq!(q.shape.dims()[4], 384);
    }
}
