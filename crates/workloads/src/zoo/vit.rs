//! Vision Transformer ViT-B/16 for ImageNet classification (224x224 input).

use crate::constraints::ThroughputTarget;
use crate::layer::LayerShape;
use crate::model::{DnnModel, Layer};

/// Appends the seven execution-critical operators of one transformer
/// encoder block: Q/K/V projections, one fused attention matmul (the
/// `QKᵀ` and `A·V` batched matmuls have identical total MACs, so they are
/// expressed as a single GEMM with doubled reduction depth, keeping one op
/// per attention as in the paper's layer counting), output projection, and
/// the two MLP GEMMs.
pub(crate) fn encoder_block(layers: &mut Vec<Layer>, tag: &str, seq: u64, d: u64, ffn: u64) {
    let l = |name: String, s| Layer::new(name, s, 1);
    layers.push(l(format!("{tag}.q"), LayerShape::gemm(d, seq, d)));
    layers.push(l(format!("{tag}.k"), LayerShape::gemm(d, seq, d)));
    layers.push(l(format!("{tag}.v"), LayerShape::gemm(d, seq, d)));
    layers.push(l(format!("{tag}.attn"), LayerShape::gemm(seq, seq, 2 * d)));
    layers.push(l(format!("{tag}.proj"), LayerShape::gemm(d, seq, d)));
    layers.push(l(format!("{tag}.mlp1"), LayerShape::gemm(ffn, seq, d)));
    layers.push(l(format!("{tag}.mlp2"), LayerShape::gemm(d, seq, ffn)));
}

/// ViT-B/16: 16x16 patch-embedding convolution, 12 encoder blocks of seven
/// ops each, classification head — 86 layers, matching the paper's count.
/// Large vision model: 10 FPS floor.
///
/// Sequence length is 197 (196 patches + class token); embedding dim 768,
/// MLP dim 3072.
pub fn vit_b16() -> DnnModel {
    let mut layers = vec![Layer::new(
        "patch_embed",
        LayerShape::conv(1, 768, 3, 14, 14, 16, 16, 16),
        1,
    )];
    for b in 0..12 {
        encoder_block(&mut layers, &format!("blocks.{b}"), 197, 768, 3072);
    }
    layers.push(Layer::new("head", LayerShape::gemm(1000, 1, 768), 1));
    DnnModel::new("VisionTransformer", layers, ThroughputTarget::fps(10.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_macs_equal_two_bmms() {
        let m = vit_b16();
        let attn = m
            .layers()
            .iter()
            .find(|l| l.name.ends_with(".attn"))
            .unwrap();
        // 12 heads x (197x197x64) per BMM, two BMMs.
        assert_eq!(attn.shape.macs(), 2 * 12 * 197 * 197 * 64);
    }

    #[test]
    fn macs_in_published_range() {
        let gmacs = vit_b16().total_macs() as f64 / 1e9;
        // ViT-B/16 is ~17.6 GMACs.
        assert!((15.0..20.0).contains(&gmacs), "ViT GMACs {gmacs}");
    }
}
