//! Canonical representation of an execution-critical DNN operator.
//!
//! All operators are expressed in a single seven-dimensional loop-nest form
//! `(N, M, C, OY, OX, FY, FX)` following the dMazeRunner convention:
//!
//! * `N`  — batch size,
//! * `M`  — output channels / filters,
//! * `C`  — input channels (reduction),
//! * `OY`, `OX` — output feature-map height and width,
//! * `FY`, `FX` — filter height and width (reduction).
//!
//! A GEMM `M×K · K×N` maps onto the nest as `M=M, C=K, OX=N` with all other
//! extents set to one, which makes every tensor-volume formula below reduce
//! to the exact GEMM volumes. A depthwise convolution keeps `C = 1` and is
//! flagged with [`OpKind::DepthwiseConv`] so that the *input* channel count
//! is taken from `M` (each output channel reads its own input channel).

use serde::{Deserialize, Serialize};

/// The kind of operator a [`LayerShape`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Standard convolution: reduction over `C`, `FY`, `FX`.
    Conv,
    /// Depthwise convolution: one input channel per output channel (`C = 1`).
    DepthwiseConv,
    /// Dense matrix multiply (fully-connected layers, attention projections).
    Gemm,
}

impl OpKind {
    /// Short lowercase tag used in reports, e.g. `conv` / `dwconv` / `gemm`.
    pub fn tag(self) -> &'static str {
        match self {
            OpKind::Conv => "conv",
            OpKind::DepthwiseConv => "dwconv",
            OpKind::Gemm => "gemm",
        }
    }
}

/// The tensors (operands) a layer exchanges with the memory hierarchy.
///
/// Output appears twice because partial sums may be both read and written,
/// mirroring the four dedicated operand NoCs of the accelerator template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tensor {
    /// Input feature map (or GEMM right-hand matrix).
    Input,
    /// Weights / filters (or GEMM left-hand matrix).
    Weight,
    /// Partial-sum reads of the output tensor.
    OutputRead,
    /// Output (final or partial-sum) writes.
    OutputWrite,
}

impl Tensor {
    /// All four operands in canonical order.
    pub const ALL: [Tensor; 4] = [
        Tensor::Input,
        Tensor::Weight,
        Tensor::OutputRead,
        Tensor::OutputWrite,
    ];

    /// Canonical index of this operand in `0..4`.
    pub fn index(self) -> usize {
        match self {
            Tensor::Input => 0,
            Tensor::Weight => 1,
            Tensor::OutputRead => 2,
            Tensor::OutputWrite => 3,
        }
    }

    /// Short lowercase tag, e.g. for report column headers.
    pub fn tag(self) -> &'static str {
        match self {
            Tensor::Input => "in",
            Tensor::Weight => "wt",
            Tensor::OutputRead => "out_rd",
            Tensor::OutputWrite => "out_wr",
        }
    }

    /// Whether this operand refers to the output tensor.
    pub fn is_output(self) -> bool {
        matches!(self, Tensor::OutputRead | Tensor::OutputWrite)
    }
}

/// Names of the seven canonical loop dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dim {
    /// Batch.
    N,
    /// Output channels.
    M,
    /// Input channels (reduction).
    C,
    /// Output rows.
    Oy,
    /// Output columns.
    Ox,
    /// Filter rows (reduction).
    Fy,
    /// Filter columns (reduction).
    Fx,
}

impl Dim {
    /// All seven dimensions in canonical order `[N, M, C, OY, OX, FY, FX]`.
    pub const ALL: [Dim; 7] = [Dim::N, Dim::M, Dim::C, Dim::Oy, Dim::Ox, Dim::Fy, Dim::Fx];

    /// Canonical index of this dimension in `0..7`.
    pub fn index(self) -> usize {
        match self {
            Dim::N => 0,
            Dim::M => 1,
            Dim::C => 2,
            Dim::Oy => 3,
            Dim::Ox => 4,
            Dim::Fy => 5,
            Dim::Fx => 6,
        }
    }

    /// Short lowercase tag (`n`, `m`, `c`, `oy`, `ox`, `fy`, `fx`).
    pub fn tag(self) -> &'static str {
        match self {
            Dim::N => "n",
            Dim::M => "m",
            Dim::C => "c",
            Dim::Oy => "oy",
            Dim::Ox => "ox",
            Dim::Fy => "fy",
            Dim::Fx => "fx",
        }
    }

    /// Whether the dimension is a reduction dimension (irrelevant to the
    /// output tensor: iterating it revisits the same output elements).
    pub fn is_reduction(self) -> bool {
        matches!(self, Dim::C | Dim::Fy | Dim::Fx)
    }
}

/// Shape of one execution-critical operator in canonical loop-nest form.
///
/// Construct with [`LayerShape::conv`], [`LayerShape::dwconv`] or
/// [`LayerShape::gemm`]; the raw constructor is private so every value is
/// validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerShape {
    n: u64,
    m: u64,
    c: u64,
    oy: u64,
    ox: u64,
    fy: u64,
    fx: u64,
    stride: u64,
    kind: OpKind,
}

impl LayerShape {
    /// Standard convolution producing an `m × oy × ox` output from `c` input
    /// channels with an `fy × fx` filter and the given stride.
    ///
    /// # Panics
    ///
    /// Panics if any extent or the stride is zero.
    #[allow(clippy::too_many_arguments)] // the seven canonical extents + stride
    pub fn conv(n: u64, m: u64, c: u64, oy: u64, ox: u64, fy: u64, fx: u64, stride: u64) -> Self {
        let s = Self {
            n,
            m,
            c,
            oy,
            ox,
            fy,
            fx,
            stride,
            kind: OpKind::Conv,
        };
        s.validate();
        s
    }

    /// Depthwise convolution over `m` channels (input channels == `m`).
    ///
    /// # Panics
    ///
    /// Panics if any extent or the stride is zero.
    pub fn dwconv(n: u64, m: u64, oy: u64, ox: u64, fy: u64, fx: u64, stride: u64) -> Self {
        let s = Self {
            n,
            m,
            c: 1,
            oy,
            ox,
            fy,
            fx,
            stride,
            kind: OpKind::DepthwiseConv,
        };
        s.validate();
        s
    }

    /// Dense GEMM computing an `m × nn` output with reduction depth `k`
    /// (i.e. `out[m][nn] = Σ_k  W[m][k] · In[k][nn]`).
    ///
    /// # Panics
    ///
    /// Panics if any extent is zero.
    pub fn gemm(m: u64, nn: u64, k: u64) -> Self {
        let s = Self {
            n: 1,
            m,
            c: k,
            oy: 1,
            ox: nn,
            fy: 1,
            fx: 1,
            stride: 1,
            kind: OpKind::Gemm,
        };
        s.validate();
        s
    }

    fn validate(&self) {
        assert!(
            self.n > 0
                && self.m > 0
                && self.c > 0
                && self.oy > 0
                && self.ox > 0
                && self.fy > 0
                && self.fx > 0,
            "layer extents must be non-zero: {self:?}"
        );
        assert!(self.stride > 0, "stride must be non-zero");
        if self.kind == OpKind::DepthwiseConv {
            assert_eq!(self.c, 1, "depthwise convolutions use c = 1");
        }
    }

    /// The operator kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Convolution stride (1 for GEMMs).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Loop extents in canonical order `[N, M, C, OY, OX, FY, FX]`.
    pub fn dims(&self) -> [u64; 7] {
        [self.n, self.m, self.c, self.oy, self.ox, self.fy, self.fx]
    }

    /// Extent of one canonical dimension.
    pub fn dim(&self, d: Dim) -> u64 {
        self.dims()[d.index()]
    }

    /// Number of input channels actually read (differs from `C` only for
    /// depthwise convolutions, where each output channel has its own input).
    pub fn input_channels(&self) -> u64 {
        match self.kind {
            OpKind::DepthwiseConv => self.m,
            _ => self.c,
        }
    }

    /// Input feature-map spatial extent `(iy, ix)` implied by the output
    /// size, filter size and stride (padding is folded in, i.e. we charge
    /// exactly the accessed halo region).
    pub fn input_hw(&self) -> (u64, u64) {
        let iy = (self.oy - 1) * self.stride + self.fy;
        let ix = (self.ox - 1) * self.stride + self.fx;
        (iy, ix)
    }

    /// Multiply-accumulate operations performed by the layer.
    pub fn macs(&self) -> u64 {
        self.n * self.m * self.c * self.oy * self.ox * self.fy * self.fx
    }

    /// Total elements of one operand tensor.
    ///
    /// [`Tensor::OutputRead`] and [`Tensor::OutputWrite`] both report the
    /// output tensor volume; how many times it is actually moved depends on
    /// the mapping and is computed by the execution model.
    pub fn tensor_elems(&self, t: Tensor) -> u64 {
        match t {
            Tensor::Weight => self.m * self.c * self.fy * self.fx,
            Tensor::Input => {
                let (iy, ix) = self.input_hw();
                self.n * self.input_channels() * iy * ix
            }
            Tensor::OutputRead | Tensor::OutputWrite => self.n * self.m * self.oy * self.ox,
        }
    }

    /// Whether a loop dimension indexes (is *relevant to*) an operand: tiling
    /// or iterating a relevant dimension changes which elements of the
    /// operand are touched, while irrelevant dimensions give reuse.
    pub fn relevant(&self, t: Tensor, d: Dim) -> bool {
        match t {
            Tensor::Weight => matches!(d, Dim::M | Dim::C | Dim::Fy | Dim::Fx),
            Tensor::Input => match self.kind {
                // Depthwise: the input is indexed by the output channel.
                OpKind::DepthwiseConv => {
                    matches!(d, Dim::N | Dim::M | Dim::Oy | Dim::Ox | Dim::Fy | Dim::Fx)
                }
                _ => matches!(d, Dim::N | Dim::C | Dim::Oy | Dim::Ox | Dim::Fy | Dim::Fx),
            },
            Tensor::OutputRead | Tensor::OutputWrite => {
                matches!(d, Dim::N | Dim::M | Dim::Oy | Dim::Ox)
            }
        }
    }

    /// The same shape with a different batch size (server/multi-stream
    /// scenarios; single-stream inference uses batch 1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_batch(&self, n: u64) -> Self {
        assert!(n > 0, "batch must be non-zero");
        let mut s = *self;
        s.n = n;
        s
    }

    /// Human-readable one-line description, e.g. `conv 64x3x7x7 s2 -> 112x112`.
    pub fn describe(&self) -> String {
        match self.kind {
            OpKind::Gemm => format!("gemm {}x{} . {}x{}", self.m, self.c, self.c, self.ox),
            _ => format!(
                "{} n{} m{} c{} {}x{} f{}x{} s{}",
                self.kind.tag(),
                self.n,
                self.m,
                self.input_channels(),
                self.oy,
                self.ox,
                self.fy,
                self.fx,
                self.stride
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_maps_to_canonical_nest() {
        let g = LayerShape::gemm(512, 196, 2048);
        assert_eq!(g.macs(), 512 * 196 * 2048);
        assert_eq!(g.tensor_elems(Tensor::Weight), 512 * 2048);
        assert_eq!(g.tensor_elems(Tensor::Input), 2048 * 196);
        assert_eq!(g.tensor_elems(Tensor::OutputWrite), 512 * 196);
    }

    #[test]
    fn conv_volumes() {
        let c = LayerShape::conv(1, 64, 3, 112, 112, 7, 7, 2);
        assert_eq!(c.macs(), 64 * 3 * 112 * 112 * 49);
        assert_eq!(c.tensor_elems(Tensor::Weight), 64 * 3 * 49);
        let (iy, ix) = c.input_hw();
        assert_eq!((iy, ix), (111 * 2 + 7, 111 * 2 + 7));
        assert_eq!(c.tensor_elems(Tensor::Input), 3 * iy * ix);
    }

    #[test]
    fn depthwise_input_channels_follow_m() {
        let d = LayerShape::dwconv(1, 32, 56, 56, 3, 3, 1);
        assert_eq!(d.input_channels(), 32);
        assert_eq!(d.macs(), 32 * 56 * 56 * 9);
        // Depthwise input is indexed by M, not C.
        assert!(d.relevant(Tensor::Input, Dim::M));
        assert!(!d.relevant(Tensor::Input, Dim::C));
    }

    #[test]
    fn relevance_matrix_for_conv() {
        let c = LayerShape::conv(1, 8, 8, 8, 8, 3, 3, 1);
        // Weights never depend on batch or output position.
        for d in [Dim::N, Dim::Oy, Dim::Ox] {
            assert!(!c.relevant(Tensor::Weight, d));
        }
        // Outputs never depend on reduction dims.
        for d in [Dim::C, Dim::Fy, Dim::Fx] {
            assert!(!c.relevant(Tensor::OutputWrite, d));
            assert!(d.is_reduction());
        }
        // Inputs depend on everything except M (for standard conv).
        assert!(!c.relevant(Tensor::Input, Dim::M));
        for d in [Dim::N, Dim::C, Dim::Oy, Dim::Ox, Dim::Fy, Dim::Fx] {
            assert!(c.relevant(Tensor::Input, d));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_extent_rejected() {
        let _ = LayerShape::conv(1, 0, 3, 8, 8, 3, 3, 1);
    }

    #[test]
    fn describe_is_nonempty_and_tagged() {
        assert!(LayerShape::gemm(2, 3, 4).describe().starts_with("gemm"));
        assert!(LayerShape::dwconv(1, 8, 4, 4, 3, 3, 1)
            .describe()
            .starts_with("dwconv"));
    }
}
