//! Whole-model descriptions: named layer lists with repeat counts, plus
//! unique-shape extraction used by the DSE (the paper analyzes bottlenecks
//! per *unique* execution-critical operator shape and weights them by how
//! often the shape occurs in the network).

use crate::constraints::ThroughputTarget;
use crate::layer::LayerShape;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One named operator instance in a network, possibly repeated.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// Layer name as it would appear in the framework export.
    pub name: String,
    /// Operator shape.
    pub shape: LayerShape,
    /// Number of times this exact layer occurs consecutively (identical
    /// repeated blocks are collapsed to keep the tables readable).
    pub repeat: u64,
}

impl Layer {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, shape: LayerShape, repeat: u64) -> Self {
        assert!(repeat > 0, "layer repeat count must be non-zero");
        Self {
            name: name.into(),
            shape,
            repeat,
        }
    }
}

/// A unique operator shape together with how many layer instances share it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UniqueShape {
    /// Representative name (first layer encountered with this shape).
    pub name: String,
    /// The shape.
    pub shape: LayerShape,
    /// Total occurrences across the network (sum of repeats).
    pub count: u64,
}

/// A deep neural network as an ordered list of execution-critical operators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnModel {
    name: String,
    layers: Vec<Layer>,
    target: ThroughputTarget,
}

impl DnnModel {
    /// Builds a model description.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>, target: ThroughputTarget) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        Self {
            name: name.into(),
            layers,
            target,
        }
    }

    /// Model name, e.g. `"ResNet18"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered layer list (repeated blocks collapsed via [`Layer::repeat`]).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The inference throughput requirement for this model (drives the
    /// latency constraint of the DSE).
    pub fn target(&self) -> ThroughputTarget {
        self.target
    }

    /// Total number of operator instances (expanding repeats).
    pub fn layer_count(&self) -> u64 {
        self.layers.iter().map(|l| l.repeat).sum()
    }

    /// Total multiply-accumulate operations for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.shape.macs() * l.repeat).sum()
    }

    /// Unique operator shapes with occurrence counts, in first-seen order.
    ///
    /// The DSE performs bottleneck analysis once per unique shape and weights
    /// the result by `count`, exactly as the paper evaluates e.g. an
    /// 18-layer DNN with "nine layers of unique tensor shapes".
    pub fn unique_shapes(&self) -> Vec<UniqueShape> {
        let mut order: Vec<LayerShape> = Vec::new();
        let mut acc: BTreeMap<LayerShape, (String, u64)> = BTreeMap::new();
        for l in &self.layers {
            match acc.get_mut(&l.shape) {
                Some((_, count)) => *count += l.repeat,
                None => {
                    order.push(l.shape);
                    acc.insert(l.shape, (l.name.clone(), l.repeat));
                }
            }
        }
        order
            .into_iter()
            .map(|shape| {
                let (name, count) = acc[&shape].clone();
                UniqueShape { name, shape, count }
            })
            .collect()
    }

    /// The same model at a different batch size (every layer's `N` extent
    /// scaled; the throughput target is unchanged — callers decide whether
    /// a batched pass amortizes it).
    pub fn with_batch(&self, n: u64) -> Self {
        let layers = self
            .layers
            .iter()
            .map(|l| Layer {
                name: l.name.clone(),
                shape: l.shape.with_batch(n),
                repeat: l.repeat,
            })
            .collect();
        Self {
            name: format!("{}@b{n}", self.name),
            layers,
            target: self.target,
        }
    }

    /// The `l` used for the paper's aggregation threshold
    /// `0.5 * (1/l) * 100%`: the number of unique shapes.
    pub fn unique_shape_count(&self) -> usize {
        self.unique_shapes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::ThroughputTarget;
    use crate::layer::LayerShape;

    fn toy() -> DnnModel {
        DnnModel::new(
            "toy",
            vec![
                Layer::new("a", LayerShape::conv(1, 8, 3, 8, 8, 3, 3, 1), 1),
                Layer::new("b", LayerShape::conv(1, 8, 8, 8, 8, 3, 3, 1), 3),
                Layer::new("c", LayerShape::conv(1, 8, 8, 8, 8, 3, 3, 1), 2),
                Layer::new("d", LayerShape::gemm(10, 1, 128), 1),
            ],
            ThroughputTarget::fps(30.0),
        )
    }

    #[test]
    fn unique_shapes_merge_counts() {
        let m = toy();
        let u = m.unique_shapes();
        assert_eq!(u.len(), 3);
        assert_eq!(m.layer_count(), 7);
        // b and c share a shape: 3 + 2 occurrences.
        let merged = u.iter().find(|s| s.name == "b").unwrap();
        assert_eq!(merged.count, 5);
        // First-seen order is preserved.
        assert_eq!(u[0].name, "a");
    }

    #[test]
    fn total_macs_weights_repeats() {
        let m = toy();
        let by_hand: u64 = m.layers().iter().map(|l| l.shape.macs() * l.repeat).sum();
        assert_eq!(m.total_macs(), by_hand);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_rejected() {
        let _ = DnnModel::new("empty", vec![], ThroughputTarget::fps(1.0));
    }
}
