//! A sensitivity-guided gray-box DSE — the §C middle ground between
//! black-box search and designer-written bottleneck models: when no
//! bottleneck model is available, per-parameter cost sensitivities can be
//! *estimated from probes* and used to pick the next parameter to move.
//!
//! The optimizer keeps an exponentially-weighted estimate of each
//! parameter's marginal cost change per index step (from its own history),
//! moves the most promising parameter in its improving direction, and
//! periodically re-probes a random parameter so stale estimates recover.

use crate::{random_point, step, DseTechnique};
use edse_core::cost::Trace;
use edse_core::evaluate::Evaluator;
use edse_core::space::DesignPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The gray-box sensitivity-guided explorer.
#[derive(Debug, Clone)]
pub struct SensitivityGuided {
    rng: StdRng,
    /// Probability of probing a random parameter instead of the best one.
    explore_prob: f64,
    /// EWMA smoothing factor for sensitivity updates.
    alpha: f64,
}

impl SensitivityGuided {
    /// A sensitivity-guided run with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            explore_prob: 0.2,
            alpha: 0.5,
        }
    }
}

impl DseTechnique for SensitivityGuided {
    fn name(&self) -> String {
        "sensitivity".into()
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let start = Instant::now();
        let space = evaluator.space().clone();
        let mut trace = Trace::new(self.name());

        let mut current: DesignPoint = space.minimum_point();
        let mut current_cost = step(evaluator, &mut trace, &current);

        // Per parameter: (estimated |improvement| per step, best direction).
        let mut gain: Vec<f64> = vec![f64::INFINITY; space.len()]; // optimistic init
        let mut dir: Vec<isize> = vec![1; space.len()];

        while trace.evaluations() < budget {
            // Pick the parameter with the highest estimated gain (ties and
            // unprobed parameters first thanks to the optimistic init), or
            // explore randomly.
            let p = if self.rng.gen::<f64>() < self.explore_prob {
                self.rng.gen_range(0..space.len())
            } else {
                (0..space.len())
                    .max_by(|&a, &b| gain[a].partial_cmp(&gain[b]).unwrap())
                    .unwrap_or(0)
            };
            let len = space.param(p).len();
            if len <= 1 {
                gain[p] = 0.0;
                continue;
            }
            let idx = current.index(p) as isize;
            let mut next = idx + dir[p];
            if next < 0 || next >= len as isize {
                dir[p] = -dir[p];
                next = idx + dir[p];
                if next < 0 || next >= len as isize {
                    gain[p] = 0.0;
                    continue;
                }
            }
            let cand = current.with_index(p, next as usize);
            let cost = step(evaluator, &mut trace, &cand);

            // Update the sensitivity estimate from the observed delta.
            let improvement = current_cost - cost;
            let observed = improvement.abs();
            gain[p] = if gain[p].is_finite() {
                self.alpha * observed + (1.0 - self.alpha) * gain[p]
            } else {
                observed
            };
            if improvement > 0.0 {
                current = cand;
                current_cost = cost;
            } else {
                // Wrong direction: flip and decay the estimate.
                dir[p] = -dir[p];
                gain[p] *= 0.5;
            }

            // Occasional restart if every direction looks exhausted.
            if gain.iter().all(|g| *g <= 1e-12) {
                current = random_point(&space, &mut self.rng);
                current_cost = step(evaluator, &mut trace, &current);
                gain.fill(f64::INFINITY);
            }
        }
        trace.wall_seconds = start.elapsed().as_secs_f64();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edse_core::evaluate::CodesignEvaluator;
    use edse_core::space::edge_space;
    use mapper::FixedMapper;
    use workloads::zoo;

    #[test]
    fn sensitivity_guided_improves_within_budget() {
        let ev = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
        let trace = SensitivityGuided::new(5).run(&ev, 120);
        assert!(trace.evaluations() <= 120);
        // The first sample is the (infeasible) minimum point; the explorer
        // must make progress on the penalized cost.
        let first = trace.samples.first().unwrap().objective;
        let last_best = trace
            .samples
            .iter()
            .map(|s| s.objective)
            .fold(f64::INFINITY, f64::min);
        assert!(last_best <= first);
    }

    #[test]
    fn sensitivity_guided_is_reproducible() {
        let run = |seed| {
            let ev = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
            SensitivityGuided::new(seed).run(&ev, 30)
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(
            a.samples
                .iter()
                .map(|s| s.point.clone())
                .collect::<Vec<_>>(),
            b.samples
                .iter()
                .map(|s| s.point.clone())
                .collect::<Vec<_>>()
        );
    }
}
