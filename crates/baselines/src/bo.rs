//! Bayesian-optimization baselines: a vanilla GP-EI optimizer and a
//! HyperMapper-2.0-style constrained variant whose acquisition multiplies
//! expected improvement by a feasibility probability.

use crate::{random_point, step, step_batch, DseTechnique};
use edse_core::cost::Trace;
use edse_core::evaluate::Evaluator;
use edse_core::space::{DesignPoint, DesignSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Gaussian process with an RBF kernel over normalized parameter indices.
///
/// Training is `O(n^3)` in the number of observations; callers subsample
/// their history to keep `n` modest (as practical BO packages do).
struct Gp {
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Vec<Vec<f64>>,
    length_scale: f64,
    noise: f64,
    y_mean: f64,
    y_std: f64,
}

impl Gp {
    #[allow(clippy::needless_range_loop)] // symmetric-matrix index pairs
    fn fit(x: Vec<Vec<f64>>, y: &[f64]) -> Option<Gp> {
        let n = x.len();
        if n == 0 {
            return None;
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_std = (y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n as f64)
            .sqrt()
            .max(1e-9);
        let yn: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();
        let length_scale = 0.3;
        let noise = 1e-4;

        // K + noise I, then Cholesky.
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..=i {
                let v = rbf(&x[i], &x[j], length_scale);
                k[i][j] = v;
                k[j][i] = v;
            }
            k[i][i] += noise;
        }
        let chol = cholesky(&k)?;
        let alpha = chol_solve(&chol, &yn);
        Some(Gp {
            x,
            alpha,
            chol,
            length_scale,
            noise,
            y_mean,
            y_std,
        })
    }

    /// Posterior mean and standard deviation at a point.
    fn predict(&self, q: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self
            .x
            .iter()
            .map(|xi| rbf(xi, q, self.length_scale))
            .collect();
        let mean_n: f64 = kstar.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        // v = L^-1 k*; var = k(q,q) + noise - v.v
        let v = forward_sub(&self.chol, &kstar);
        let var = (1.0 + self.noise - v.iter().map(|a| a * a).sum::<f64>()).max(1e-12);
        (mean_n * self.y_std + self.y_mean, var.sqrt() * self.y_std)
    }
}

fn rbf(a: &[f64], b: &[f64], ls: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
    (-d2 / (2.0 * ls * ls)).exp()
}

#[allow(clippy::needless_range_loop)] // triangular index pairs
fn cholesky(k: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = k.len();
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = k[i][j];
            for t in 0..j {
                sum -= l[i][t] * l[j][t];
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    Some(l)
}

fn forward_sub(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = l.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[i][j] * y[j];
        }
        y[i] = sum / l[i][i];
    }
    y
}

fn chol_solve(l: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = l.len();
    let y = forward_sub(l, b);
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for j in (i + 1)..n {
            sum -= l[j][i] * x[j];
        }
        x[i] = sum / l[i][i];
    }
    x
}

fn normalize(space: &DesignSpace, p: &DesignPoint) -> Vec<f64> {
    space
        .params()
        .iter()
        .enumerate()
        .map(|(i, def)| {
            if def.len() <= 1 {
                0.0
            } else {
                p.index(i) as f64 / (def.len() - 1) as f64
            }
        })
        .collect()
}

/// Standard-normal pdf / cdf (Abramowitz-Stegun approximation for the cdf).
fn phi(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

fn big_phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement of a minimization at predicted `(mean, std)` over
/// the incumbent `best`.
fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    (best - mean) * big_phi(z) + std * phi(z)
}

/// Shared BO skeleton: initial random design, then GP-EI acquisition over a
/// random candidate pool, with optional feasibility weighting.
fn run_bo(
    evaluator: &dyn Evaluator,
    budget: usize,
    rng: &mut StdRng,
    name: &str,
    feasibility_aware: bool,
) -> Trace {
    let start = Instant::now();
    let space = evaluator.space().clone();
    let mut trace = Trace::new(name);

    let init = (budget / 5).clamp(3, 20).min(budget);
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut feas: Vec<bool> = Vec::new();

    // Initial design: feedback-free, evaluated as one batch.
    let design: Vec<DesignPoint> = (0..init).map(|_| random_point(&space, rng)).collect();
    for (p, cost) in design
        .iter()
        .zip(step_batch(evaluator, &mut trace, &design))
    {
        xs.push(normalize(&space, p));
        // Fit the GP on log cost: the penalized range spans orders of
        // magnitude.
        ys.push(cost.max(1e-12).ln());
        feas.push(cost < 1e12);
    }

    while trace.evaluations() < budget {
        // Subsample history for the GP (keep the most recent + best).
        const MAX_GP: usize = 120;
        let (gx, gy): (Vec<Vec<f64>>, Vec<f64>) = if xs.len() > MAX_GP {
            let skip = xs.len() - MAX_GP;
            (xs[skip..].to_vec(), ys[skip..].to_vec())
        } else {
            (xs.clone(), ys.clone())
        };
        let gp = Gp::fit(gx, &gy);
        let best = ys.iter().cloned().fold(f64::INFINITY, f64::min);

        let pool = 256;
        let mut best_cand: Option<(DesignPoint, f64)> = None;
        for _ in 0..pool {
            let cand = random_point(&space, rng);
            let q = normalize(&space, &cand);
            let score = match &gp {
                Some(gp) => {
                    let (m, s) = gp.predict(&q);
                    let mut ei = expected_improvement(m, s, best);
                    if feasibility_aware {
                        // k-NN feasibility probability (HyperMapper's
                        // feasibility classifier stand-in).
                        let mut dists: Vec<(f64, bool)> = xs
                            .iter()
                            .zip(&feas)
                            .map(|(x, f)| {
                                let d: f64 = x.iter().zip(&q).map(|(a, b)| (a - b).powi(2)).sum();
                                (d, *f)
                            })
                            .collect();
                        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                        let k = dists.len().min(7);
                        let p_feas =
                            dists[..k].iter().filter(|(_, f)| *f).count() as f64 / k as f64;
                        ei *= p_feas.max(0.05);
                    }
                    ei
                }
                None => 1.0,
            };
            if best_cand.as_ref().is_none_or(|(_, s)| score > *s) {
                best_cand = Some((cand, score));
            }
        }
        let (cand, _) = best_cand.expect("pool non-empty");
        let cost = step(evaluator, &mut trace, &cand);
        xs.push(normalize(&space, &cand));
        ys.push(cost.max(1e-12).ln());
        feas.push(cost < 1e12);
    }
    trace.wall_seconds = start.elapsed().as_secs_f64();
    trace
}

/// Vanilla Bayesian optimization (GP + expected improvement), the
/// `fmfn/BayesianOptimization`-style baseline.
#[derive(Debug, Clone)]
pub struct BayesianOpt {
    rng: StdRng,
}

impl BayesianOpt {
    /// A BO run with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DseTechnique for BayesianOpt {
    fn name(&self) -> String {
        "bayesian".into()
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        run_bo(evaluator, budget, &mut self.rng, "bayesian", false)
    }
}

/// HyperMapper-2.0-style constrained Bayesian optimization: expected
/// improvement weighted by a feasibility classifier.
#[derive(Debug, Clone)]
pub struct HyperMapperLike {
    rng: StdRng,
}

impl HyperMapperLike {
    /// A constrained-BO run with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DseTechnique for HyperMapperLike {
    fn name(&self) -> String {
        "hypermapper".into()
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        run_bo(evaluator, budget, &mut self.rng, "hypermapper", true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_interpolates_training_points() {
        let x = vec![vec![0.0], vec![0.5], vec![1.0]];
        let y = [1.0, 2.0, 3.0];
        let gp = Gp::fit(x, &y).unwrap();
        let (m, s) = gp.predict(&[0.5]);
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
        assert!(s < 0.2, "std {s}");
    }

    #[test]
    fn gp_uncertainty_grows_away_from_data() {
        let x = vec![vec![0.0], vec![0.1]];
        let y = [1.0, 1.1];
        let gp = Gp::fit(x, &y).unwrap();
        let (_, near) = gp.predict(&[0.05]);
        let (_, far) = gp.predict(&[1.0]);
        assert!(far > near);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
    }

    #[test]
    fn ei_positive_when_mean_below_best() {
        assert!(expected_improvement(0.0, 1.0, 1.0) > 0.0);
        assert!(expected_improvement(5.0, 0.0, 1.0) == 0.0);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn cholesky_roundtrip() {
        let k = vec![vec![4.0, 2.0], vec![2.0, 3.0]];
        let l = cholesky(&k).unwrap();
        // L L^T == K
        for i in 0..2 {
            for j in 0..2 {
                let v: f64 = (0..2).map(|t| l[i][t] * l[j][t]).sum();
                assert!((v - k[i][j]).abs() < 1e-12);
            }
        }
        let x = chol_solve(&l, &[1.0, 1.0]);
        // K x = b
        for i in 0..2 {
            let b: f64 = (0..2).map(|j| k[i][j] * x[j]).sum();
            assert!((b - 1.0).abs() < 1e-9);
        }
    }
}
