//! Confuciux-style constrained reinforcement learning: a REINFORCE policy
//! with per-parameter categorical distributions and a constraint-aware
//! reward, generalized (as the paper did for its evaluation) to an
//! arbitrary number of parameters, per-parameter domain sizes, and an
//! arbitrary number of constraints.

use crate::{step, DseTechnique};
use edse_core::cost::Trace;
use edse_core::evaluate::Evaluator;
use edse_core::space::DesignPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// The RL baseline.
#[derive(Debug, Clone)]
pub struct ConfuciuxRl {
    rng: StdRng,
    learning_rate: f64,
}

impl ConfuciuxRl {
    /// An RL run with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            learning_rate: 0.2,
        }
    }

    fn sample(&mut self, logits: &[Vec<f64>]) -> DesignPoint {
        let indices = logits
            .iter()
            .map(|row| {
                let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = row.iter().map(|l| (l - max).exp()).collect();
                let total: f64 = exps.iter().sum();
                let mut u = self.rng.gen::<f64>() * total;
                for (i, e) in exps.iter().enumerate() {
                    u -= e;
                    if u <= 0.0 {
                        return i;
                    }
                }
                exps.len() - 1
            })
            .collect();
        DesignPoint::new(indices)
    }
}

impl DseTechnique for ConfuciuxRl {
    fn name(&self) -> String {
        "rl".into()
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let start = Instant::now();
        let space = evaluator.space().clone();
        let constraints = evaluator.constraints().to_vec();
        let mut trace = Trace::new(self.name());

        let mut logits: Vec<Vec<f64>> = space.params().iter().map(|p| vec![0.0; p.len()]).collect();
        let mut baseline = 0.0f64;
        let mut episodes = 0usize;

        while trace.evaluations() < budget {
            let point = self.sample(&logits);
            let eval = evaluator.evaluate(&point);
            let cost = step(evaluator, &mut trace, &point);
            let _ = cost;

            // Constraint-aware reward shaping (Confuciux penalizes
            // violations; we generalize to the mean over-utilization).
            let feasible = eval.feasible(&constraints);
            let reward = if feasible && eval.objective.is_finite() {
                -eval.objective.max(1e-9).ln()
            } else {
                let over = eval.constraint_budget(&constraints);
                -10.0
                    - if over.is_finite() {
                        over.min(100.0)
                    } else {
                        100.0
                    }
            };

            episodes += 1;
            baseline += (reward - baseline) / episodes as f64;
            let advantage = reward - baseline;

            // REINFORCE update per parameter.
            for (p, row) in logits.iter_mut().enumerate() {
                let chosen = point.index(p);
                let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = row.iter().map(|l| (l - max).exp()).collect();
                let total: f64 = exps.iter().sum();
                for (i, item) in row.iter_mut().enumerate() {
                    let prob = exps[i] / total;
                    let grad = if i == chosen { 1.0 - prob } else { -prob };
                    *item += self.learning_rate * advantage * grad;
                }
            }
        }
        trace.wall_seconds = start.elapsed().as_secs_f64();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edse_core::evaluate::CodesignEvaluator;
    use edse_core::space::edge_space;
    use mapper::FixedMapper;
    use workloads::zoo;

    #[test]
    fn rl_runs_and_samples_within_domains() {
        let ev = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
        let trace = ConfuciuxRl::new(11).run(&ev, 12);
        assert_eq!(trace.evaluations(), 12);
        for s in &trace.samples {
            for (i, &idx) in s.point.indices().iter().enumerate() {
                assert!(idx < ev.space().param(i).len());
            }
        }
    }

    #[test]
    fn rl_is_reproducible() {
        let run = |seed| {
            let ev = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
            ConfuciuxRl::new(seed).run(&ev, 8)
        };
        let a = run(4);
        let b = run(4);
        assert_eq!(
            a.samples
                .iter()
                .map(|s| s.point.clone())
                .collect::<Vec<_>>(),
            b.samples
                .iter()
                .map(|s| s.point.clone())
                .collect::<Vec<_>>()
        );
    }
}
