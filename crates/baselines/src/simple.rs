//! Non-feedback and classic stochastic baselines: grid search, random
//! search, simulated annealing, genetic algorithm.

use crate::{random_point, step, step_batch, DseTechnique};
use edse_core::cost::Trace;
use edse_core::evaluate::Evaluator;
use edse_core::space::DesignPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Grid search: strides each parameter so the grid's size roughly matches
/// the budget, then sweeps it (a non-feedback technique, Fig. 1a).
#[derive(Debug, Clone, Copy, Default)]
pub struct GridSearch;

impl DseTechnique for GridSearch {
    fn name(&self) -> String {
        "grid".into()
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let start = Instant::now();
        let space = evaluator.space().clone();
        let mut trace = Trace::new(self.name());

        // Choose per-parameter sample counts so the product ~ budget:
        // repeatedly double the count of the parameter with the largest
        // remaining domain while the grid still fits the budget.
        let mut counts: Vec<usize> = vec![1; space.len()];
        loop {
            let grid: usize = counts.iter().product();
            let candidate = (0..space.len())
                .filter(|&i| counts[i] * 2 <= space.param(i).len().max(2))
                .max_by_key(|&i| space.param(i).len() / counts[i]);
            match candidate {
                Some(i) if grid * 2 <= budget => {
                    counts[i] = (counts[i] * 2).min(space.param(i).len())
                }
                _ => break,
            }
        }

        // The sweep has no feedback: enumerate every grid point first, then
        // evaluate the whole set as one batch.
        let mut points = Vec::new();
        let mut counter = vec![0usize; space.len()];
        'outer: loop {
            if points.len() >= budget {
                break;
            }
            // Map counter to spread indices across each domain.
            let indices: Vec<usize> = counter
                .iter()
                .zip(space.params())
                .zip(&counts)
                .map(|((&c, p), &cnt)| {
                    if cnt <= 1 {
                        0
                    } else {
                        c * (p.len() - 1) / (cnt - 1)
                    }
                })
                .collect();
            points.push(DesignPoint::new(indices));

            // Mixed-radix increment.
            for i in 0..counter.len() {
                counter[i] += 1;
                if counter[i] < counts[i] {
                    continue 'outer;
                }
                counter[i] = 0;
            }
            break;
        }
        step_batch(evaluator, &mut trace, &points);
        trace.wall_seconds = start.elapsed().as_secs_f64();
        trace
    }
}

/// Uniform random search (non-feedback).
#[derive(Debug, Clone)]
pub struct RandomSearch {
    rng: StdRng,
}

impl RandomSearch {
    /// A random search with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DseTechnique for RandomSearch {
    fn name(&self) -> String {
        "random".into()
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let start = Instant::now();
        let space = evaluator.space().clone();
        let mut trace = Trace::new(self.name());
        // No feedback: draw every point up front, evaluate as one batch.
        let points: Vec<DesignPoint> = (0..budget)
            .map(|_| random_point(&space, &mut self.rng))
            .collect();
        step_batch(evaluator, &mut trace, &points);
        trace.wall_seconds = start.elapsed().as_secs_f64();
        trace
    }
}

/// Simulated annealing with a linear temperature schedule and single-index
/// neighborhood moves (the SciPy-style baseline).
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    rng: StdRng,
    initial_temp: f64,
}

impl SimulatedAnnealing {
    /// An annealer with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            initial_temp: 1.0,
        }
    }
}

impl DseTechnique for SimulatedAnnealing {
    fn name(&self) -> String {
        "annealing".into()
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let start = Instant::now();
        let space = evaluator.space().clone();
        let mut trace = Trace::new(self.name());

        let mut current = random_point(&space, &mut self.rng);
        let mut current_cost = step(evaluator, &mut trace, &current);
        while trace.evaluations() < budget {
            let temp =
                self.initial_temp * (1.0 - trace.evaluations() as f64 / budget as f64).max(1e-3);
            // Neighbor: move one random parameter by +-1 index.
            let p = self.rng.gen_range(0..space.len());
            let len = space.param(p).len();
            let idx = current.index(p);
            let next = if self.rng.gen::<bool>() && idx + 1 < len {
                idx + 1
            } else {
                idx.saturating_sub(1)
            };
            let cand = current.with_index(p, next);
            let cost = step(evaluator, &mut trace, &cand);
            let accept = cost <= current_cost || {
                let ratio = (current_cost - cost) / (current_cost.abs().max(1e-9) * temp);
                self.rng.gen::<f64>() < ratio.exp()
            };
            if accept {
                current = cand;
                current_cost = cost;
            }
        }
        trace.wall_seconds = start.elapsed().as_secs_f64();
        trace
    }
}

/// Genetic algorithm with tournament selection, uniform crossover, and
/// per-index mutation (the scikit-opt-style baseline).
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    population: usize,
    rng: StdRng,
}

impl GeneticAlgorithm {
    /// A GA with the given population size and seed.
    pub fn new(population: usize, seed: u64) -> Self {
        Self {
            population: population.max(4),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DseTechnique for GeneticAlgorithm {
    fn name(&self) -> String {
        "genetic".into()
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let start = Instant::now();
        let space = evaluator.space().clone();
        let mut trace = Trace::new(self.name());

        // Initial population: no feedback between members, one batch.
        let seeds: Vec<DesignPoint> = (0..self.population.min(budget))
            .map(|_| random_point(&space, &mut self.rng))
            .collect();
        let costs = step_batch(evaluator, &mut trace, &seeds);
        let mut pop: Vec<(DesignPoint, f64)> = seeds.into_iter().zip(costs).collect();

        while trace.evaluations() < budget {
            let pick = |rng: &mut StdRng, pop: &[(DesignPoint, f64)]| {
                let a = rng.gen_range(0..pop.len());
                let b = rng.gen_range(0..pop.len());
                if pop[a].1 <= pop[b].1 {
                    pop[a].0.clone()
                } else {
                    pop[b].0.clone()
                }
            };
            let pa = pick(&mut self.rng, &pop);
            let pb = pick(&mut self.rng, &pop);
            // Uniform crossover + mutation.
            let mut child: Vec<usize> = (0..space.len())
                .map(|i| {
                    if self.rng.gen::<bool>() {
                        pa.index(i)
                    } else {
                        pb.index(i)
                    }
                })
                .collect();
            for (i, gene) in child.iter_mut().enumerate() {
                if self.rng.gen::<f64>() < 0.1 {
                    *gene = self.rng.gen_range(0..space.param(i).len());
                }
            }
            let cand = DesignPoint::new(child);
            let cost = step(evaluator, &mut trace, &cand);
            // Replace the worst member if the child is better.
            if let Some(worst) = pop
                .iter()
                .enumerate()
                .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap())
                .map(|(i, _)| i)
            {
                if cost < pop[worst].1 {
                    pop[worst] = (cand, cost);
                }
            }
        }
        trace.wall_seconds = start.elapsed().as_secs_f64();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edse_core::evaluate::CodesignEvaluator;
    use edse_core::space::edge_space;
    use mapper::FixedMapper;
    use workloads::zoo;

    fn evaluator() -> CodesignEvaluator<FixedMapper> {
        CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper)
    }

    #[test]
    fn grid_covers_distinct_points() {
        let ev = evaluator();
        let t = GridSearch.run(&ev, 30);
        let mut pts: Vec<_> = t.samples.iter().map(|s| s.point.clone()).collect();
        pts.sort_by_key(|p| p.indices().to_vec());
        pts.dedup();
        assert!(pts.len() > 1, "grid should visit distinct points");
    }

    #[test]
    fn random_search_is_reproducible() {
        let a = RandomSearch::new(5).run(&evaluator(), 10);
        let b = RandomSearch::new(5).run(&evaluator(), 10);
        let pa: Vec<_> = a.samples.iter().map(|s| s.point.clone()).collect();
        let pb: Vec<_> = b.samples.iter().map(|s| s.point.clone()).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn annealing_neighbors_differ_by_one_index() {
        let ev = evaluator();
        let t = SimulatedAnnealing::new(3).run(&ev, 12);
        assert_eq!(t.evaluations(), 12);
    }

    #[test]
    fn ga_population_larger_than_budget_is_clipped() {
        let ev = evaluator();
        let t = GeneticAlgorithm::new(64, 2).run(&ev, 10);
        assert_eq!(t.evaluations(), 10);
    }
}
