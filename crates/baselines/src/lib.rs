#![warn(missing_docs)]
//! Non-explainable DSE baselines, reimplementing the comparison set of the
//! Explainable-DSE paper's §5: grid search, random search, simulated
//! annealing (SciPy-style), a genetic algorithm (scikit-opt style),
//! Bayesian optimization, HyperMapper-2.0-style constrained Bayesian
//! optimization, and Confuciux-style constrained reinforcement learning.
//!
//! All techniques run against the same [`edse_core::evaluate::Evaluator`]
//! and report the same [`edse_core::cost::Trace`] format as the explainable
//! DSE, so every figure compares like with like.
//!
//! # Example
//!
//! ```
//! use baselines::{DseTechnique, RandomSearch};
//! use edse_core::evaluate::CodesignEvaluator;
//! use edse_core::space::edge_space;
//! use mapper::FixedMapper;
//! use workloads::zoo;
//!
//! let evaluator =
//!     CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
//! let trace = RandomSearch::new(7).run(&evaluator, 20);
//! assert_eq!(trace.evaluations(), 20);
//! ```

pub mod bo;
pub mod hybrid;
pub mod rl;
pub mod sensitivity;
pub mod simple;

pub use bo::{BayesianOpt, HyperMapperLike};
pub use hybrid::{ExplainableTechnique, WarmStartHybrid};
pub use rl::ConfuciuxRl;
pub use sensitivity::SensitivityGuided;
pub use simple::{GeneticAlgorithm, GridSearch, RandomSearch, SimulatedAnnealing};

use edse_core::checkpoint::{load_baseline, CheckpointingEvaluator};
use edse_core::cost::{Sample, Trace};
use edse_core::evaluate::Evaluator;
use edse_core::space::DesignPoint;
use edse_telemetry::{Collector, Level};
use std::path::PathBuf;

/// A DSE technique: explores for `budget` unique evaluations and returns
/// the full trace.
pub trait DseTechnique {
    /// Technique name for reports, e.g. `"random"`.
    fn name(&self) -> String;

    /// Runs the exploration against an evaluator. Feedback-free stages
    /// (initial designs, whole non-adaptive sweeps) go through
    /// [`Evaluator::evaluate_batch`], so a parallel evaluator speeds them
    /// up without changing any result.
    ///
    /// For telemetry (a `baseline/<name>` span plus per-sample iteration
    /// records) and checkpoint/resume, run the technique through
    /// [`BaselineSession`] instead of calling this directly.
    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace;
}

/// Builder and runner for one baseline exploration: telemetry plus
/// checkpoint/resume for any [`DseTechnique`], mirroring
/// `edse_core::SearchSession` for the explainable search.
///
/// Baselines are black boxes, so there is no mid-search state to
/// serialize; instead the session checkpoints the *evaluator caches*
/// (every [`BaselineSession::checkpoint_every`] unique evaluations, via
/// [`CheckpointingEvaluator`]) and resumes by replay: the caches are
/// restored and the deterministic technique re-runs from scratch, with
/// every already-completed evaluation answered from cache. The resumed
/// trace is bit-for-bit identical to the uninterrupted one.
///
/// ```
/// use baselines::{BaselineSession, RandomSearch};
/// use edse_core::evaluate::CodesignEvaluator;
/// use edse_core::space::edge_space;
/// use mapper::FixedMapper;
/// use workloads::zoo;
///
/// let evaluator =
///     CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
/// let mut technique = RandomSearch::new(7);
/// let trace = BaselineSession::new(&mut technique).run(&evaluator, 20);
/// assert_eq!(trace.evaluations(), 20);
/// ```
pub struct BaselineSession<'t> {
    technique: &'t mut dyn DseTechnique,
    telemetry: Collector,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
}

impl<'t> BaselineSession<'t> {
    /// Starts a session around a technique. Telemetry defaults to the
    /// inert collector and checkpointing is off.
    pub fn new(technique: &'t mut dyn DseTechnique) -> Self {
        BaselineSession {
            technique,
            telemetry: Collector::noop(),
            checkpoint: None,
            checkpoint_every: 10,
            resume: false,
        }
    }

    /// Attaches a telemetry collector: the run gets a `baseline/<name>`
    /// span and per-sample iteration records.
    pub fn telemetry(mut self, telemetry: Collector) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables checkpointing of the evaluator caches to `path`
    /// (atomically, write-then-rename).
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Snapshot cadence in unique evaluations (default 10; clamped to at
    /// least 1).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// When enabled (with [`BaselineSession::checkpoint`]), restores the
    /// snapshot's evaluator caches before running, if the snapshot file
    /// exists; starts fresh when it does not.
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Runs the technique for `budget` unique evaluations.
    ///
    /// # Panics
    ///
    /// Panics when resume is enabled and the snapshot file exists but
    /// cannot be loaded, or records a different technique or budget than
    /// this run — replay-resume is only bit-identical when the re-run
    /// matches the interrupted run exactly, so a mismatch is surfaced
    /// loudly rather than silently recomputing.
    pub fn run(self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let name = self.technique.name();
        if let (Some(path), true) = (&self.checkpoint, self.resume) {
            if path.exists() {
                let snapshot =
                    load_baseline(path).unwrap_or_else(|e| panic!("cannot resume baseline: {e}"));
                assert_eq!(
                    snapshot.technique, name,
                    "cannot resume baseline: snapshot records technique {:?}, this run is {:?}",
                    snapshot.technique, name
                );
                assert_eq!(
                    snapshot.budget, budget,
                    "cannot resume baseline: snapshot records budget {}, this run has {}",
                    snapshot.budget, budget
                );
                evaluator.restore_caches(&snapshot.caches);
                self.telemetry.log(
                    Level::Info,
                    &format!(
                        "resumed baseline {name} from {} with {} cached evaluations",
                        path.display(),
                        snapshot.caches.unique_evaluations
                    ),
                );
            }
        }
        let trace = match &self.checkpoint {
            Some(path) => {
                let guarded = CheckpointingEvaluator::new(
                    evaluator,
                    path.clone(),
                    self.checkpoint_every,
                    name.clone(),
                    budget,
                    self.telemetry.clone(),
                );
                let trace = {
                    let _span = self.telemetry.span(&format!("baseline/{name}"));
                    self.technique.run(&guarded, budget)
                };
                guarded.save();
                trace
            }
            None => {
                let _span = self.telemetry.span(&format!("baseline/{name}"));
                self.technique.run(evaluator, budget)
            }
        };
        trace.emit_iteration_records(&self.telemetry, budget);
        trace
    }
}

/// Evaluates a point, appends it to the trace, and returns its penalized
/// scalar cost (shared by all baselines): the objective for feasible
/// points; a large violation-scaled penalty otherwise, so unconstrained
/// optimizers still feel constraint pressure the way the paper's penalized
/// baselines do.
pub(crate) fn step(evaluator: &dyn Evaluator, trace: &mut Trace, point: &DesignPoint) -> f64 {
    step_batch(evaluator, trace, std::slice::from_ref(point))[0]
}

/// Batch counterpart of [`step`]: evaluates all points through
/// [`Evaluator::evaluate_batch`], records them in input order, and returns
/// their penalized costs. Identical results to calling [`step`] per point.
pub(crate) fn step_batch(
    evaluator: &dyn Evaluator,
    trace: &mut Trace,
    points: &[DesignPoint],
) -> Vec<f64> {
    let constraints = evaluator.constraints().to_vec();
    let evals = evaluator.evaluate_batch(points);
    points
        .iter()
        .zip(evals)
        .map(|(point, eval)| {
            let feasible = eval.feasible(&constraints);
            trace.samples.push(Sample {
                point: point.clone(),
                objective: eval.objective,
                constraint_values: eval.constraint_values.clone(),
                feasible,
            });
            if feasible {
                eval.objective
            } else {
                let budget = eval.constraint_budget(&constraints);
                // Infeasible points rank strictly worse than any feasible
                // one and worse the deeper the violation.
                if budget.is_finite() {
                    1e12 * (1.0 + budget)
                } else {
                    1e15
                }
            }
        })
        .collect()
}

/// Uniformly random point in a space.
pub(crate) fn random_point(
    space: &edse_core::space::DesignSpace,
    rng: &mut rand::rngs::StdRng,
) -> DesignPoint {
    use rand::Rng;
    DesignPoint::new(
        space
            .params()
            .iter()
            .map(|p| rng.gen_range(0..p.len()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use edse_core::evaluate::CodesignEvaluator;
    use edse_core::space::edge_space;
    use mapper::FixedMapper;
    use workloads::zoo;

    fn evaluator() -> CodesignEvaluator<FixedMapper> {
        CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper)
    }

    #[test]
    fn every_technique_respects_budget_and_reports_samples() {
        let budget = 15;
        let mut techs: Vec<Box<dyn DseTechnique>> = vec![
            Box::new(GridSearch),
            Box::new(RandomSearch::new(1)),
            Box::new(SimulatedAnnealing::new(1)),
            Box::new(GeneticAlgorithm::new(6, 1)),
            Box::new(BayesianOpt::new(1)),
            Box::new(HyperMapperLike::new(1)),
            Box::new(ConfuciuxRl::new(1)),
        ];
        for t in &mut techs {
            let ev = evaluator();
            let trace = t.run(&ev, budget);
            assert!(
                trace.evaluations() <= budget,
                "{} overshot: {}",
                t.name(),
                trace.evaluations()
            );
            assert!(trace.evaluations() > 0, "{} did nothing", t.name());
            assert!(!trace.technique.is_empty());
        }
    }

    #[test]
    fn traced_session_matches_run_and_emits_comparable_records() {
        use edse_telemetry::{Event, MemorySink};
        let budget = 12;
        let plain = RandomSearch::new(3).run(&evaluator(), budget);

        let sink = MemorySink::new();
        let collector = Collector::builder().sink(sink.clone()).build();
        let mut technique = RandomSearch::new(3);
        let traced = BaselineSession::new(&mut technique)
            .telemetry(collector.clone())
            .run(&evaluator(), budget);
        // Identical samples; wall_seconds legitimately differs between runs.
        assert_eq!(
            plain.samples, traced.samples,
            "telemetry must not change the search"
        );

        let events = sink.events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SpanEnter { name, .. } if name == "baseline/random")),
            "the traced session must open a technique span"
        );
        let records: Vec<_> = events
            .into_iter()
            .filter_map(|e| match e {
                Event::Iteration { record, .. } => Some(record),
                _ => None,
            })
            .collect();
        assert_eq!(records.len(), traced.evaluations());
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.technique, "random");
            assert_eq!(rec.iteration as usize, i);
            // A black box offers no explanation — that contrast with the
            // explainable DSE's records is the point.
            assert!(rec.bottleneck.is_none());
            assert_eq!((rec.proposed, rec.deduped, rec.evaluated), (1, 0, 1));
            assert_eq!(rec.budget_remaining as usize, budget - (i + 1));
        }
    }

    #[test]
    fn baseline_warm_starts_from_a_shared_disk_cache() {
        use edse_core::DiskCache;
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!(
            "edse-baseline-diskcache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let budget = 10;
        let cold = {
            let disk = Arc::new(DiskCache::open(&dir).unwrap());
            let ev = evaluator().with_disk_cache(disk);
            let mut technique = RandomSearch::new(5);
            BaselineSession::new(&mut technique).run(&ev, budget)
        };
        // Same technique in a fresh process: identical trace, all layer
        // mappings answered from disk.
        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        let ev = evaluator().with_disk_cache(disk);
        let mut technique = RandomSearch::new(5);
        let warm = BaselineSession::new(&mut technique).run(&ev, budget);
        assert_eq!(cold.samples, warm.samples, "warm must be bit-identical");
        let disk_stats = ev.cache_stats().disk.unwrap();
        assert!(disk_stats.hits > 0);
        assert_eq!(disk_stats.misses, 0);
        drop(ev);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_resumes_by_replay_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "edse-baseline-resume-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("random.ckpt.json");
        let budget = 14;

        let mut technique = RandomSearch::new(9);
        let uninterrupted = BaselineSession::new(&mut technique).run(&evaluator(), budget);

        // "Interrupted" run: checkpoint every 3 unique evaluations, but
        // stop the technique early by shrinking its budget — the snapshot
        // still records the full budget so a resume can check it.
        {
            let ev = evaluator();
            let guarded = edse_core::CheckpointingEvaluator::new(
                &ev,
                path.clone(),
                3,
                "random",
                budget,
                Collector::noop(),
            );
            let _partial = RandomSearch::new(9).run(&guarded, budget / 2);
        }
        assert!(path.exists(), "interrupted run must leave a snapshot");

        // Resume: restore caches, replay from scratch against a mapper
        // that would give different answers if re-consulted for cached
        // layers — replay must hit only the cache for the first half.
        let ev = evaluator();
        let mut technique = RandomSearch::new(9);
        let resumed = BaselineSession::new(&mut technique)
            .checkpoint(&path)
            .resume(true)
            .run(&ev, budget);
        assert_eq!(
            uninterrupted.samples, resumed.samples,
            "replay-resume must be bit-identical"
        );

        // A mismatched budget must refuse to resume rather than silently
        // replay a different search.
        let mut technique = RandomSearch::new(9);
        let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BaselineSession::new(&mut technique)
                .checkpoint(&path)
                .resume(true)
                .run(&evaluator(), budget + 1)
        }));
        assert!(refused.is_err(), "budget drift must be rejected");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn penalized_cost_orders_infeasible_below_feasible() {
        let ev = evaluator();
        let mut trace = Trace::new("test");
        // Minimum point: infeasible (violates the throughput floor).
        let bad = ev.space().minimum_point();
        let cost = step(&ev, &mut trace, &bad);
        assert!(cost >= 1e12);
    }
}
