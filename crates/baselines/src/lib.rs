#![warn(missing_docs)]
//! Non-explainable DSE baselines, reimplementing the comparison set of the
//! Explainable-DSE paper's §5: grid search, random search, simulated
//! annealing (SciPy-style), a genetic algorithm (scikit-opt style),
//! Bayesian optimization, HyperMapper-2.0-style constrained Bayesian
//! optimization, and Confuciux-style constrained reinforcement learning.
//!
//! All techniques run against the same [`edse_core::evaluate::Evaluator`]
//! and report the same [`edse_core::cost::Trace`] format as the explainable
//! DSE, so every figure compares like with like.
//!
//! # Example
//!
//! ```
//! use baselines::{DseTechnique, RandomSearch};
//! use edse_core::evaluate::CodesignEvaluator;
//! use edse_core::space::edge_space;
//! use mapper::FixedMapper;
//! use workloads::zoo;
//!
//! let evaluator =
//!     CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
//! let trace = RandomSearch::new(7).run(&evaluator, 20);
//! assert_eq!(trace.evaluations(), 20);
//! ```

pub mod bo;
pub mod hybrid;
pub mod rl;
pub mod sensitivity;
pub mod simple;

pub use bo::{BayesianOpt, HyperMapperLike};
pub use hybrid::{ExplainableTechnique, WarmStartHybrid};
pub use rl::ConfuciuxRl;
pub use sensitivity::SensitivityGuided;
pub use simple::{GeneticAlgorithm, GridSearch, RandomSearch, SimulatedAnnealing};

use edse_core::checkpoint::{load_baseline, CheckpointingEvaluator};
use edse_core::cost::{Constraint, Evaluation, Sample, Trace};
use edse_core::evaluate::{CacheSnapshot, CacheStats, Evaluator};
use edse_core::fault::EvalFault;
use edse_core::space::{DesignPoint, DesignSpace};
use edse_core::{CancelToken, JobSpec, StepOutcome};
use edse_telemetry::{Collector, Level};
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// A DSE technique: explores for `budget` unique evaluations and returns
/// the full trace.
pub trait DseTechnique {
    /// Technique name for reports, e.g. `"random"`.
    fn name(&self) -> String;

    /// Runs the exploration against an evaluator. Feedback-free stages
    /// (initial designs, whole non-adaptive sweeps) go through
    /// [`Evaluator::evaluate_batch`], so a parallel evaluator speeds them
    /// up without changing any result.
    ///
    /// For telemetry (a `baseline/<name>` span plus per-sample iteration
    /// records) and checkpoint/resume, run the technique through
    /// [`BaselineSession`] instead of calling this directly.
    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace;
}

/// Builder and runner for one baseline exploration: telemetry plus
/// checkpoint/resume for any [`DseTechnique`], mirroring
/// `edse_core::SearchSession` for the explainable search.
///
/// Baselines are black boxes, so there is no mid-search state to
/// serialize; instead the session checkpoints the *evaluator caches*
/// (every [`BaselineSession::checkpoint_every`] unique evaluations, via
/// [`CheckpointingEvaluator`]) and resumes by replay: the caches are
/// restored and the deterministic technique re-runs from scratch, with
/// every already-completed evaluation answered from cache. The resumed
/// trace is bit-for-bit identical to the uninterrupted one.
///
/// ```
/// use baselines::{BaselineSession, RandomSearch};
/// use edse_core::evaluate::CodesignEvaluator;
/// use edse_core::space::edge_space;
/// use mapper::FixedMapper;
/// use workloads::zoo;
///
/// let evaluator =
///     CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
/// let mut technique = RandomSearch::new(7);
/// let trace = BaselineSession::new(&mut technique).run(&evaluator, 20);
/// assert_eq!(trace.evaluations(), 20);
/// ```
pub struct BaselineSession<'t> {
    technique: &'t mut dyn DseTechnique,
    telemetry: Collector,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    resume: bool,
}

impl<'t> BaselineSession<'t> {
    /// Starts a session around a technique. Telemetry defaults to the
    /// inert collector and checkpointing is off.
    pub fn new(technique: &'t mut dyn DseTechnique) -> Self {
        BaselineSession {
            technique,
            telemetry: Collector::noop(),
            checkpoint: None,
            checkpoint_every: 10,
            resume: false,
        }
    }

    /// Attaches a telemetry collector: the run gets a `baseline/<name>`
    /// span and per-sample iteration records.
    pub fn telemetry(mut self, telemetry: Collector) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Applies the session-relevant subset of a [`JobSpec`]: checkpoint
    /// path, snapshot cadence, and resume policy — the same configuration
    /// surface `edse_core::SearchSession::spec` consumes.
    pub fn spec(mut self, spec: &JobSpec) -> Self {
        self.checkpoint = spec.checkpoint.clone();
        self.checkpoint_every = spec.checkpoint_every.max(1);
        self.resume = spec.resume;
        self
    }

    /// Enables checkpointing of the evaluator caches to `path`.
    #[deprecated(since = "0.8.0", note = "set `JobSpec::checkpoint` and use `spec()`")]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Snapshot cadence in unique evaluations (default 10; clamped to at
    /// least 1).
    #[deprecated(
        since = "0.8.0",
        note = "set `JobSpec::checkpoint_every` and use `spec()`"
    )]
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// When enabled (with a checkpoint path), restores the snapshot's
    /// evaluator caches before running, if the snapshot file exists;
    /// starts fresh when it does not.
    #[deprecated(since = "0.8.0", note = "set `JobSpec::resume` and use `spec()`")]
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Runs the technique for `budget` unique evaluations.
    ///
    /// # Panics
    ///
    /// Panics when resume is enabled and the snapshot file exists but
    /// cannot be loaded, or records a different technique or budget than
    /// this run — replay-resume is only bit-identical when the re-run
    /// matches the interrupted run exactly, so a mismatch is surfaced
    /// loudly rather than silently recomputing.
    pub fn run(self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let name = self.technique.name();
        if let (Some(path), true) = (&self.checkpoint, self.resume) {
            if path.exists() {
                let snapshot =
                    load_baseline(path).unwrap_or_else(|e| panic!("cannot resume baseline: {e}"));
                assert_eq!(
                    snapshot.technique, name,
                    "cannot resume baseline: snapshot records technique {:?}, this run is {:?}",
                    snapshot.technique, name
                );
                assert_eq!(
                    snapshot.budget, budget,
                    "cannot resume baseline: snapshot records budget {}, this run has {}",
                    snapshot.budget, budget
                );
                evaluator.restore_caches(&snapshot.caches);
                self.telemetry.log(
                    Level::Info,
                    &format!(
                        "resumed baseline {name} from {} with {} cached evaluations",
                        path.display(),
                        snapshot.caches.unique_evaluations
                    ),
                );
            }
        }
        let trace = match &self.checkpoint {
            Some(path) => {
                let guarded = CheckpointingEvaluator::new(
                    evaluator,
                    path.clone(),
                    self.checkpoint_every,
                    name.clone(),
                    budget,
                    self.telemetry.clone(),
                );
                let trace = {
                    let _span = self.telemetry.span(&format!("baseline/{name}"));
                    self.technique.run(&guarded, budget)
                };
                guarded.save();
                trace
            }
            None => {
                let _span = self.telemetry.span(&format!("baseline/{name}"));
                self.technique.run(evaluator, budget)
            }
        };
        trace.emit_iteration_records(&self.telemetry, budget);
        trace
    }
}

/// An owned, stepwise, cancellable baseline exploration — the baseline
/// counterpart of `edse_core::SearchDriver`, speaking the same
/// [`StepOutcome`]/[`CancelToken`] protocol so a scheduler can interleave
/// explainable and baseline jobs uniformly.
///
/// Baselines are black boxes with no mid-search state to hand back, so the
/// driver steps by *replay chunks*: each [`BaselineDriver::step`] builds a
/// fresh technique from a deterministic factory and re-runs it against the
/// **full** budget — several techniques plan from the budget (grid strides,
/// cooling schedules, generation counts), so handing them a partial budget
/// would change their decisions — but the replay is stopped, by unwinding
/// out of the evaluator, once it has performed one chunk of *new*
/// evaluations. Every evaluation completed by earlier steps is answered
/// from the evaluator's caches, so a replay costs cache lookups plus one
/// chunk of new evaluations, and the final trace is bit-for-bit identical
/// to an uninterrupted [`BaselineSession::run`] (the same property behind
/// replay-resume, enforced by the conformance driver oracle
/// `driver_stepping_matches_blocking_run`). Iteration records stream
/// incrementally: each step emits only the samples it appended.
pub struct BaselineDriver<E, F> {
    factory: F,
    evaluator: E,
    budget: usize,
    chunk: usize,
    telemetry: Collector,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    cancel: CancelToken,
    trace: Trace,
    emitted: usize,
    outcome: Option<StepOutcome>,
    name: String,
}

impl<E, F> BaselineDriver<E, F>
where
    E: Evaluator,
    F: Fn() -> Box<dyn DseTechnique>,
{
    /// Starts a driver around a deterministic technique factory: every
    /// call to `factory` must produce an identically-configured technique
    /// (same kind, same seed), because each step replays the search from
    /// scratch against the warm caches.
    ///
    /// # Panics
    ///
    /// Panics when [`JobSpec::resume`] is set and the snapshot file exists
    /// but cannot be loaded, or records a different technique or budget —
    /// the same loud mismatch policy as [`BaselineSession::run`].
    pub fn new(factory: F, evaluator: E, budget: usize, spec: &JobSpec) -> Self {
        let name = factory().name();
        let telemetry = Collector::noop();
        let driver = BaselineDriver {
            factory,
            evaluator,
            budget,
            chunk: 10,
            telemetry,
            checkpoint: spec.checkpoint.clone(),
            checkpoint_every: spec.checkpoint_every.max(1),
            cancel: CancelToken::new(),
            trace: Trace::new(name.clone()),
            emitted: 0,
            outcome: None,
            name,
        };
        if spec.resume {
            if let Some(path) = &driver.checkpoint {
                if path.exists() {
                    let snapshot = load_baseline(path)
                        .unwrap_or_else(|e| panic!("cannot resume baseline: {e}"));
                    assert_eq!(
                        snapshot.technique, driver.name,
                        "cannot resume baseline: snapshot records technique {:?}, this run is {:?}",
                        snapshot.technique, driver.name
                    );
                    assert_eq!(
                        snapshot.budget, budget,
                        "cannot resume baseline: snapshot records budget {}, this run has {}",
                        snapshot.budget, budget
                    );
                    driver.evaluator.restore_caches(&snapshot.caches);
                }
            }
        }
        driver
    }

    /// Attaches a telemetry collector: each step then streams the
    /// iteration records of the samples it appended.
    pub fn telemetry(mut self, telemetry: Collector) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replay-chunk size: how many *new* samples one [`BaselineDriver::step`]
    /// targets (default 10; clamped to at least 1). Smaller chunks react
    /// to cancellation faster at the price of more replay overhead.
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Uses `token` as the driver's cancellation token instead of a fresh
    /// one.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// A clone of the driver's cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Advances the exploration by one replay chunk. Checks the
    /// [`CancelToken`] first: when it has fired, no chunk runs, the
    /// evaluator caches are snapshotted if checkpointing is configured,
    /// and [`StepOutcome::Cancelled`] is returned. After termination (or a
    /// cancel) further calls are no-ops returning the same outcome.
    pub fn step(&mut self) -> StepOutcome {
        if let Some(outcome) = self.outcome {
            return outcome;
        }
        if self.cancel.is_cancelled() {
            self.snapshot();
            self.outcome = Some(StepOutcome::Cancelled);
            return StepOutcome::Cancelled;
        }
        let mut technique = (self.factory)();
        let (trace, done) = match &self.checkpoint {
            Some(path) => {
                let guarded = CheckpointingEvaluator::new(
                    &self.evaluator,
                    path.clone(),
                    self.checkpoint_every,
                    self.name.clone(),
                    self.budget,
                    self.telemetry.clone(),
                );
                let limited = ChunkLimited::new(&guarded, self.chunk);
                let run = {
                    let _span = self.telemetry.span(&format!("baseline/{}", self.name));
                    catch_unwind(AssertUnwindSafe(|| technique.run(&limited, self.budget)))
                };
                guarded.save();
                Self::replay_outcome(run, limited, &self.name)
            }
            None => {
                let limited = ChunkLimited::new(&self.evaluator, self.chunk);
                let run = {
                    let _span = self.telemetry.span(&format!("baseline/{}", self.name));
                    catch_unwind(AssertUnwindSafe(|| technique.run(&limited, self.budget)))
                };
                Self::replay_outcome(run, limited, &self.name)
            }
        };
        self.trace = trace;
        self.trace
            .emit_iteration_records_from(&self.telemetry, self.budget, self.emitted);
        self.emitted = self.trace.samples.len();
        if done {
            self.outcome = Some(StepOutcome::Done);
            StepOutcome::Done
        } else {
            StepOutcome::Pending
        }
    }

    /// Interprets one replay: a normal return is the complete run (the
    /// technique hit its own termination against the full budget); a
    /// [`ChunkDone`] unwind yields the prefix trace the adapter recorded;
    /// any other panic is a real failure and is re-raised.
    fn replay_outcome<I: Evaluator>(
        run: std::thread::Result<Trace>,
        limited: ChunkLimited<'_, I>,
        name: &str,
    ) -> (Trace, bool) {
        match run {
            Ok(trace) => (trace, true),
            Err(payload) => {
                if payload.downcast_ref::<ChunkDone>().is_none() {
                    resume_unwind(payload);
                }
                (limited.into_trace(name), false)
            }
        }
    }

    /// Steps until the exploration terminates or the token fires, then
    /// returns the trace.
    pub fn run_to_completion(mut self) -> Trace {
        while self.step() == StepOutcome::Pending {}
        self.finish()
    }

    /// Writes an evaluator-cache snapshot now when checkpointing is
    /// configured; a no-op otherwise. Returns whether a save was attempted.
    pub fn snapshot(&mut self) -> bool {
        let Some(path) = self.checkpoint.clone() else {
            return false;
        };
        let guarded = CheckpointingEvaluator::new(
            &self.evaluator,
            path,
            self.checkpoint_every,
            self.name.clone(),
            self.budget,
            self.telemetry.clone(),
        );
        guarded.save();
        true
    }

    /// Whether the exploration has terminated or been cancelled.
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    /// Unique evaluations recorded so far.
    pub fn evaluations(&self) -> usize {
        self.trace.evaluations()
    }

    /// Objective of the best feasible sample so far, if any.
    pub fn best_objective(&self) -> Option<f64> {
        self.trace.best_feasible().map(|s| s.objective)
    }

    /// Best feasible sample so far, if any.
    pub fn best(&self) -> Option<&Sample> {
        self.trace.best_feasible()
    }

    /// The evaluator the driver owns.
    pub fn evaluator(&self) -> &E {
        &self.evaluator
    }

    /// Consumes the driver, yielding the trace explored so far.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

/// Unwind payload used by [`ChunkLimited`] to stop a replay once its chunk
/// of new evaluations is complete. Never escapes [`BaselineDriver::step`].
struct ChunkDone;

/// Evaluator adapter behind [`BaselineDriver::step`]: forwards to `inner`,
/// records every evaluated sample (so an aborted replay still yields the
/// trace prefix the technique had built), and unwinds with [`ChunkDone`]
/// once `inner` has performed `limit` *new* evaluations since the adapter
/// was built. The check runs before each call, never mid-batch, so batch
/// results — and therefore the eventual full trace — are untouched.
struct ChunkLimited<'e, E> {
    inner: &'e E,
    base: usize,
    limit: usize,
    log: RefCell<Vec<Sample>>,
}

impl<'e, E: Evaluator> ChunkLimited<'e, E> {
    fn new(inner: &'e E, limit: usize) -> Self {
        ChunkLimited {
            inner,
            base: inner.unique_evaluations(),
            limit: limit.max(1),
            log: RefCell::new(Vec::new()),
        }
    }

    /// Unwinds out of the replay when the chunk is spent. Uses
    /// `resume_unwind` (not a panic) so the per-step abort is silent —
    /// it must not trip the panic hook once per scheduler step.
    fn check(&self) {
        if self.inner.unique_evaluations() - self.base >= self.limit {
            resume_unwind(Box::new(ChunkDone));
        }
    }

    fn record(&self, point: &DesignPoint, eval: &Evaluation) {
        let feasible = eval.feasible(self.inner.constraints());
        self.log.borrow_mut().push(Sample {
            point: point.clone(),
            objective: eval.objective,
            constraint_values: eval.constraint_values.clone(),
            feasible,
        });
    }

    /// The prefix trace of the aborted replay, in evaluation order.
    fn into_trace(self, name: &str) -> Trace {
        let mut trace = Trace::new(name);
        trace.samples = self.log.into_inner();
        trace
    }
}

impl<E: Evaluator> Evaluator for ChunkLimited<'_, E> {
    fn evaluate(&self, point: &DesignPoint) -> Evaluation {
        self.check();
        let eval = self.inner.evaluate(point);
        self.record(point, &eval);
        eval
    }

    fn evaluate_batch(&self, points: &[DesignPoint]) -> Vec<Evaluation> {
        self.check();
        let evals = self.inner.evaluate_batch(points);
        for (point, eval) in points.iter().zip(&evals) {
            self.record(point, eval);
        }
        evals
    }

    fn try_evaluate(&self, point: &DesignPoint) -> Result<Evaluation, EvalFault> {
        self.check();
        let result = self.inner.try_evaluate(point);
        if let Ok(eval) = &result {
            self.record(point, eval);
        }
        result
    }

    fn try_evaluate_batch(&self, points: &[DesignPoint]) -> Vec<Result<Evaluation, EvalFault>> {
        self.check();
        let results = self.inner.try_evaluate_batch(points);
        for (point, result) in points.iter().zip(&results) {
            if let Ok(eval) = result {
                self.record(point, eval);
            }
        }
        results
    }

    fn space(&self) -> &DesignSpace {
        self.inner.space()
    }

    fn constraints(&self) -> &[Constraint] {
        self.inner.constraints()
    }

    fn unique_evaluations(&self) -> usize {
        self.inner.unique_evaluations()
    }

    fn decode(&self, point: &DesignPoint) -> accel_model::AcceleratorConfig {
        self.inner.decode(point)
    }

    fn cache_snapshot(&self) -> CacheSnapshot {
        self.inner.cache_snapshot()
    }

    fn restore_caches(&self, snapshot: &CacheSnapshot) {
        self.inner.restore_caches(snapshot)
    }

    fn cache_stats(&self) -> CacheStats {
        self.inner.cache_stats()
    }
}

/// Evaluates a point, appends it to the trace, and returns its penalized
/// scalar cost (shared by all baselines): the objective for feasible
/// points; a large violation-scaled penalty otherwise, so unconstrained
/// optimizers still feel constraint pressure the way the paper's penalized
/// baselines do.
pub(crate) fn step(evaluator: &dyn Evaluator, trace: &mut Trace, point: &DesignPoint) -> f64 {
    step_batch(evaluator, trace, std::slice::from_ref(point))[0]
}

/// Batch counterpart of [`step`]: evaluates all points through
/// [`Evaluator::evaluate_batch`], records them in input order, and returns
/// their penalized costs. Identical results to calling [`step`] per point.
pub(crate) fn step_batch(
    evaluator: &dyn Evaluator,
    trace: &mut Trace,
    points: &[DesignPoint],
) -> Vec<f64> {
    let constraints = evaluator.constraints().to_vec();
    let evals = evaluator.evaluate_batch(points);
    points
        .iter()
        .zip(evals)
        .map(|(point, eval)| {
            let feasible = eval.feasible(&constraints);
            trace.samples.push(Sample {
                point: point.clone(),
                objective: eval.objective,
                constraint_values: eval.constraint_values.clone(),
                feasible,
            });
            if feasible {
                eval.objective
            } else {
                let budget = eval.constraint_budget(&constraints);
                // Infeasible points rank strictly worse than any feasible
                // one and worse the deeper the violation.
                if budget.is_finite() {
                    1e12 * (1.0 + budget)
                } else {
                    1e15
                }
            }
        })
        .collect()
}

/// Uniformly random point in a space.
pub(crate) fn random_point(
    space: &edse_core::space::DesignSpace,
    rng: &mut rand::rngs::StdRng,
) -> DesignPoint {
    use rand::Rng;
    DesignPoint::new(
        space
            .params()
            .iter()
            .map(|p| rng.gen_range(0..p.len()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use edse_core::evaluate::CodesignEvaluator;
    use edse_core::space::edge_space;
    use mapper::FixedMapper;
    use workloads::zoo;

    fn evaluator() -> CodesignEvaluator<FixedMapper> {
        CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper)
    }

    #[test]
    fn every_technique_respects_budget_and_reports_samples() {
        let budget = 15;
        let mut techs: Vec<Box<dyn DseTechnique>> = vec![
            Box::new(GridSearch),
            Box::new(RandomSearch::new(1)),
            Box::new(SimulatedAnnealing::new(1)),
            Box::new(GeneticAlgorithm::new(6, 1)),
            Box::new(BayesianOpt::new(1)),
            Box::new(HyperMapperLike::new(1)),
            Box::new(ConfuciuxRl::new(1)),
        ];
        for t in &mut techs {
            let ev = evaluator();
            let trace = t.run(&ev, budget);
            assert!(
                trace.evaluations() <= budget,
                "{} overshot: {}",
                t.name(),
                trace.evaluations()
            );
            assert!(trace.evaluations() > 0, "{} did nothing", t.name());
            assert!(!trace.technique.is_empty());
        }
    }

    #[test]
    fn traced_session_matches_run_and_emits_comparable_records() {
        use edse_telemetry::{Event, MemorySink};
        let budget = 12;
        let plain = RandomSearch::new(3).run(&evaluator(), budget);

        let sink = MemorySink::new();
        let collector = Collector::builder().sink(sink.clone()).build();
        let mut technique = RandomSearch::new(3);
        let traced = BaselineSession::new(&mut technique)
            .telemetry(collector.clone())
            .run(&evaluator(), budget);
        // Identical samples; wall_seconds legitimately differs between runs.
        assert_eq!(
            plain.samples, traced.samples,
            "telemetry must not change the search"
        );

        let events = sink.events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::SpanEnter { name, .. } if name == "baseline/random")),
            "the traced session must open a technique span"
        );
        let records: Vec<_> = events
            .into_iter()
            .filter_map(|e| match e {
                Event::Iteration { record, .. } => Some(record),
                _ => None,
            })
            .collect();
        assert_eq!(records.len(), traced.evaluations());
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(rec.technique, "random");
            assert_eq!(rec.iteration as usize, i);
            // A black box offers no explanation — that contrast with the
            // explainable DSE's records is the point.
            assert!(rec.bottleneck.is_none());
            assert_eq!((rec.proposed, rec.deduped, rec.evaluated), (1, 0, 1));
            assert_eq!(rec.budget_remaining as usize, budget - (i + 1));
        }
    }

    #[test]
    fn baseline_warm_starts_from_a_shared_disk_cache() {
        use edse_core::DiskCache;
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!(
            "edse-baseline-diskcache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let budget = 10;
        let cold = {
            let disk = Arc::new(DiskCache::open(&dir).unwrap());
            let ev = evaluator().with_disk_cache(disk);
            let mut technique = RandomSearch::new(5);
            BaselineSession::new(&mut technique).run(&ev, budget)
        };
        // Same technique in a fresh process: identical trace, all layer
        // mappings answered from disk.
        let disk = Arc::new(DiskCache::open(&dir).unwrap());
        let ev = evaluator().with_disk_cache(disk);
        let mut technique = RandomSearch::new(5);
        let warm = BaselineSession::new(&mut technique).run(&ev, budget);
        assert_eq!(cold.samples, warm.samples, "warm must be bit-identical");
        let disk_stats = ev.cache_stats().disk.unwrap();
        assert!(disk_stats.hits > 0);
        assert_eq!(disk_stats.misses, 0);
        drop(ev);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_resumes_by_replay_bit_identically() {
        let dir = std::env::temp_dir().join(format!(
            "edse-baseline-resume-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("random.ckpt.json");
        let budget = 14;

        let mut technique = RandomSearch::new(9);
        let uninterrupted = BaselineSession::new(&mut technique).run(&evaluator(), budget);

        // "Interrupted" run: checkpoint every 3 unique evaluations, but
        // stop the technique early by shrinking its budget — the snapshot
        // still records the full budget so a resume can check it.
        {
            let ev = evaluator();
            let guarded = edse_core::CheckpointingEvaluator::new(
                &ev,
                path.clone(),
                3,
                "random",
                budget,
                Collector::noop(),
            );
            let _partial = RandomSearch::new(9).run(&guarded, budget / 2);
        }
        assert!(path.exists(), "interrupted run must leave a snapshot");

        // Resume: restore caches, replay from scratch against a mapper
        // that would give different answers if re-consulted for cached
        // layers — replay must hit only the cache for the first half.
        let ev = evaluator();
        let mut technique = RandomSearch::new(9);
        let resumed = BaselineSession::new(&mut technique)
            .spec(&JobSpec {
                checkpoint: Some(path.clone()),
                resume: true,
                ..JobSpec::default()
            })
            .run(&ev, budget);
        assert_eq!(
            uninterrupted.samples, resumed.samples,
            "replay-resume must be bit-identical"
        );

        // A mismatched budget must refuse to resume rather than silently
        // replay a different search.
        let mut technique = RandomSearch::new(9);
        let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            BaselineSession::new(&mut technique)
                .spec(&JobSpec {
                    checkpoint: Some(path.clone()),
                    resume: true,
                    ..JobSpec::default()
                })
                .run(&evaluator(), budget + 1)
        }));
        assert!(refused.is_err(), "budget drift must be rejected");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn penalized_cost_orders_infeasible_below_feasible() {
        let ev = evaluator();
        let mut trace = Trace::new("test");
        // Minimum point: infeasible (violates the throughput floor).
        let bad = ev.space().minimum_point();
        let cost = step(&ev, &mut trace, &bad);
        assert!(cost >= 1e12);
    }
}
