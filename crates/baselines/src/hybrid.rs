//! Hybrid optimization methodologies (paper §B): Explainable-DSE's
//! quickly-found efficient solutions serve as high-quality initial points
//! for further black-box refinement, and black-box techniques can be
//! chained with each other.

use crate::{random_point, step, DseTechnique};
use edse_core::bottleneck::dnn_latency_model;
use edse_core::cost::Trace;
use edse_core::dse::DseConfig;
use edse_core::evaluate::Evaluator;
use edse_core::space::DesignPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Chains two phases: any warm-up technique followed by a refinement
/// technique whose exploration is biased around the warm-up's best point.
///
/// The refinement is a seeded local random search: each sample re-draws a
/// few parameters of the incumbent (the common "basin hopping around a
/// good initial point" pattern the paper's hybrid-methodology note
/// alludes to).
pub struct WarmStartHybrid {
    warmup: Box<dyn DseTechnique>,
    warmup_share: f64,
    rng: StdRng,
}

impl WarmStartHybrid {
    /// A hybrid spending `warmup_share` (0..1) of the budget on `warmup`
    /// and the rest refining around its best point.
    ///
    /// # Panics
    ///
    /// Panics if `warmup_share` is not within `(0, 1)`.
    pub fn new(warmup: Box<dyn DseTechnique>, warmup_share: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&warmup_share) && warmup_share > 0.0);
        Self {
            warmup,
            warmup_share,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DseTechnique for WarmStartHybrid {
    fn name(&self) -> String {
        format!("{}+refine", self.warmup.name())
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let start = Instant::now();
        let space = evaluator.space().clone();
        let warm_budget = ((budget as f64 * self.warmup_share) as usize)
            .max(1)
            .min(budget);
        let mut trace = self.warmup.run(evaluator, warm_budget);
        trace.technique = self.name();

        let mut incumbent = trace
            .best_feasible()
            .map(|s| s.point.clone())
            .unwrap_or_else(|| random_point(&space, &mut self.rng));
        let mut incumbent_cost = f64::INFINITY;

        while trace.evaluations() < budget {
            // Redraw 1-3 parameters of the incumbent.
            let mut cand = incumbent.clone();
            let moves = self.rng.gen_range(1..=3usize);
            for _ in 0..moves {
                let p = self.rng.gen_range(0..space.len());
                let idx = self.rng.gen_range(0..space.param(p).len());
                cand = cand.with_index(p, idx);
            }
            let cost = step(evaluator, &mut trace, &cand);
            if cost < incumbent_cost {
                incumbent_cost = cost;
                incumbent = cand;
            }
        }
        trace.wall_seconds = start.elapsed().as_secs_f64();
        trace
    }
}

/// Explainable-DSE as a [`DseTechnique`], so it can warm-start hybrids and
/// participate in any baseline-style harness. Uses the standard DNN
/// latency bottleneck model.
pub struct ExplainableTechnique {
    config: DseConfig,
}

impl ExplainableTechnique {
    /// Wraps Explainable-DSE with the given seed (other knobs default).
    pub fn new(seed: u64) -> Self {
        Self {
            config: DseConfig {
                seed,
                ..DseConfig::default()
            },
        }
    }

    /// Wraps Explainable-DSE with an explicit configuration.
    pub fn with_config(config: DseConfig) -> Self {
        Self { config }
    }
}

impl DseTechnique for ExplainableTechnique {
    fn name(&self) -> String {
        "explainable".into()
    }

    fn run(&mut self, evaluator: &dyn Evaluator, budget: usize) -> Trace {
        let session = edse_core::SearchSession::new(
            dnn_latency_model(),
            DseConfig {
                budget,
                ..self.config.clone()
            },
        )
        .evaluator(evaluator);
        let initial: DesignPoint = evaluator.space().minimum_point();
        session.run(initial).into_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomSearch;
    use edse_core::evaluate::CodesignEvaluator;
    use edse_core::space::edge_space;
    use mapper::FixedMapper;
    use workloads::zoo;

    fn evaluator() -> CodesignEvaluator<FixedMapper> {
        CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper)
    }

    #[test]
    fn hybrid_respects_total_budget() {
        let mut h = WarmStartHybrid::new(Box::new(RandomSearch::new(3)), 0.4, 3);
        let trace = h.run(&evaluator(), 30);
        assert_eq!(trace.evaluations(), 30);
        assert_eq!(trace.technique, "random+refine");
    }

    #[test]
    fn explainable_warmup_hands_off_a_feasible_incumbent() {
        // §B: the explainable phase lands a feasible point quickly; the
        // refinement phase may only improve on it.
        let mut h = WarmStartHybrid::new(Box::new(ExplainableTechnique::new(1)), 0.5, 1);
        let ev = evaluator();
        let trace = h.run(&ev, 160);
        let best = trace
            .best_feasible()
            .expect("hybrid finds a feasible design");
        // Compare with warmup-only at the same share of budget.
        let ev2 = evaluator();
        let warm_only = ExplainableTechnique::new(1).run(&ev2, 80);
        if let Some(w) = warm_only.best_feasible() {
            assert!(
                best.objective <= w.objective + 1e-9,
                "refinement must not lose the incumbent"
            );
        }
    }

    #[test]
    #[should_panic(expected = "warmup_share")]
    fn invalid_share_rejected() {
        let _ = WarmStartHybrid::new(Box::new(RandomSearch::new(0)), 1.5, 0);
    }
}
