//! Property-based tests for the baseline optimizers against a synthetic
//! evaluator (fast, no DNN machinery): every technique must respect its
//! budget, stay within parameter domains, and be seed-reproducible.

use baselines::{
    BayesianOpt, ConfuciuxRl, DseTechnique, GeneticAlgorithm, GridSearch, HyperMapperLike,
    RandomSearch, SimulatedAnnealing,
};
use edse_core::cost::{Constraint, Evaluation};
use edse_core::evaluate::Evaluator;
use edse_core::space::{DesignPoint, DesignSpace, ParamDef};
use proptest::prelude::*;
use std::cell::Cell;

/// A cheap synthetic problem: quadratic bowl objective with one synthetic
/// constraint, over an arbitrary discrete space. The call counter uses a
/// `Cell` because [`Evaluator::evaluate`] takes `&self`.
struct Bowl {
    space: DesignSpace,
    constraints: Vec<Constraint>,
    evals: Cell<usize>,
}

impl Bowl {
    fn new(sizes: &[usize]) -> Self {
        let params = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| ParamDef::new(format!("p{i}"), (0..n).map(|v| v as f64 + 1.0).collect()))
            .collect();
        Self {
            space: DesignSpace::new(params),
            constraints: vec![Constraint::new("sum", 1e9)],
            evals: Cell::new(0),
        }
    }
}

impl Evaluator for Bowl {
    fn evaluate(&self, point: &DesignPoint) -> Evaluation {
        self.evals.set(self.evals.get() + 1);
        let obj: f64 = point
            .indices()
            .iter()
            .enumerate()
            .map(|(i, &idx)| {
                let center = self.space.param(i).len() as f64 / 2.0;
                (idx as f64 - center).powi(2)
            })
            .sum::<f64>()
            + 1.0;
        Evaluation {
            objective: obj,
            mappable: true,
            constraint_values: vec![obj],
            layers: vec![],
            area_mm2: 0.0,
            power_w: 0.0,
            energy_mj: 0.0,
        }
    }

    fn space(&self) -> &DesignSpace {
        &self.space
    }

    fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    fn unique_evaluations(&self) -> usize {
        self.evals.get()
    }

    fn decode(&self, _point: &DesignPoint) -> accel_model::AcceleratorConfig {
        accel_model::AcceleratorConfig::edge_baseline()
    }
}

/// Sum of `{cache}shardNN{kind}` counters, e.g. all `point_cache/` misses.
fn kind_sum(counters: &std::collections::BTreeMap<String, u64>, cache: &str, kind: &str) -> u64 {
    counters
        .iter()
        .filter(|(k, _)| k.starts_with(cache) && k.ends_with(kind))
        .map(|(_, v)| *v)
        .sum()
}

fn techniques(seed: u64) -> Vec<Box<dyn DseTechnique>> {
    vec![
        Box::new(GridSearch),
        Box::new(RandomSearch::new(seed)),
        Box::new(SimulatedAnnealing::new(seed)),
        Box::new(GeneticAlgorithm::new(8, seed)),
        Box::new(BayesianOpt::new(seed)),
        Box::new(HyperMapperLike::new(seed)),
        Box::new(ConfuciuxRl::new(seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Budget discipline and in-domain sampling on arbitrary spaces.
    #[test]
    fn budget_and_domains_hold(
        sizes in proptest::collection::vec(2usize..9, 2..6),
        budget in 5usize..40,
        seed in 0u64..100,
    ) {
        for mut t in techniques(seed) {
            let bowl = Bowl::new(&sizes);
            let trace = t.run(&bowl, budget);
            prop_assert!(trace.evaluations() <= budget, "{}", t.name());
            prop_assert!(trace.evaluations() > 0);
            for s in &trace.samples {
                prop_assert_eq!(s.point.indices().len(), sizes.len());
                for (i, &idx) in s.point.indices().iter().enumerate() {
                    prop_assert!(idx < sizes[i], "{} out of domain", t.name());
                }
            }
        }
    }

    /// Seeded runs are exactly reproducible.
    #[test]
    fn reproducibility(seed in 0u64..50) {
        let sizes = [5usize, 7, 3];
        for (mut a, mut b) in techniques(seed).into_iter().zip(techniques(seed)) {
            let ta = a.run(&Bowl::new(&sizes), 20);
            let tb = b.run(&Bowl::new(&sizes), 20);
            let pa: Vec<_> = ta.samples.iter().map(|s| s.point.clone()).collect();
            let pb: Vec<_> = tb.samples.iter().map(|s| s.point.clone()).collect();
            prop_assert_eq!(pa, pb, "{} not reproducible", a.name());
        }
    }

    /// On the easy bowl, every feedback technique improves over its first
    /// sample given a moderate budget.
    #[test]
    fn feedback_techniques_improve_on_the_bowl(seed in 0u64..20) {
        let sizes = [9usize, 9, 9];
        for mut t in techniques(seed) {
            if t.name() == "grid" {
                continue; // non-feedback; coverage, not improvement
            }
            let trace = t.run(&Bowl::new(&sizes), 60);
            let first = trace.samples.first().unwrap().objective;
            let best = trace.best_feasible().unwrap().objective;
            prop_assert!(best <= first, "{} got worse", t.name());
        }
    }

    /// Whole-DSE determinism across the evaluation engine: the explainable
    /// DSE over a parallel codesign evaluator reproduces the serial run's
    /// incumbent trace (points, objectives, best) exactly, for any seed.
    #[test]
    fn dse_batch_matches_serial_incumbent_trace(seed in 0u64..12) {
        use edse_core::evaluate::{CodesignEvaluator, EvalEngine};
        use edse_core::space::edge_space;
        use edse_core::dse::DseConfig;
        use edse_core::bottleneck::dnn_latency_model;

        let run = |engine: EvalEngine| {
            let ev = CodesignEvaluator::new(
                edge_space(),
                vec![workloads::zoo::resnet18()],
                mapper::FixedMapper,
            )
            .with_engine(engine);
            let session = edse_core::SearchSession::new(
                dnn_latency_model(),
                DseConfig { budget: 40, seed, ..DseConfig::default() },
            )
            .evaluator(&ev);
            let initial = ev.space().minimum_point();
            let result = session.run(initial);
            (result, ev.unique_evaluations())
        };
        let (serial, serial_uniques) = run(EvalEngine::serial());
        let (parallel, parallel_uniques) = run(EvalEngine::with_threads(4));

        prop_assert_eq!(serial_uniques, parallel_uniques);
        prop_assert_eq!(serial.trace().samples.len(), parallel.trace().samples.len());
        for (a, b) in serial.trace().samples.iter().zip(&parallel.trace().samples) {
            prop_assert_eq!(&a.point, &b.point);
            prop_assert_eq!(a.objective, b.objective);
            prop_assert_eq!(&a.constraint_values, &b.constraint_values);
            prop_assert_eq!(a.feasible, b.feasible);
        }
        match (serial.best(), parallel.best()) {
            (Some((pa, ea)), Some((pb, eb))) => {
                prop_assert_eq!(pa, pb);
                prop_assert_eq!(ea, eb);
            }
            (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
        }
    }

    /// Telemetry counter accounting across the evaluation engine: the
    /// 4-thread run's counters sum exactly to the serial run's values, and
    /// the point-cache miss counter IS the unique-evaluation count.
    ///
    /// The parallel engine reshuffles *classifications*, never totals:
    /// an access that is a `hit` serially may be an `inflight_wait` in a
    /// race, and the batch pre-warm phase moves layer-mapping misses out
    /// of point evaluation — but misses stay misses and every access is
    /// still counted exactly once.
    #[test]
    fn telemetry_counters_parallel_sum_to_serial(seed in 0u64..6) {
        use edse_core::evaluate::{CodesignEvaluator, EvalEngine};
        use edse_core::space::edge_space;
        use edse_core::dse::DseConfig;
        use edse_core::bottleneck::dnn_latency_model;
        use edse_telemetry::{Collector, Event, MemorySink};

        let run = |engine: EvalEngine| {
            let sink = MemorySink::new();
            let collector = Collector::builder().sink(sink.clone()).build();
            let ev = CodesignEvaluator::new(
                edge_space(),
                vec![workloads::zoo::resnet18()],
                mapper::FixedMapper,
            )
            .with_engine(engine)
            .with_telemetry(collector.clone());
            let session = edse_core::SearchSession::new(
                dnn_latency_model(),
                DseConfig { budget: 40, seed, ..DseConfig::default() },
            )
            .evaluator(&ev)
            .telemetry(collector.clone());
            let _ = session.run(ev.space().minimum_point());
            (ev.unique_evaluations(), collector.counters(), sink.events())
        };
        let (serial_uniques, serial, _) = run(EvalEngine::serial());
        let (parallel_uniques, parallel, parallel_events) = run(EvalEngine::with_threads(4));

        // unique_evaluations() equals the point-cache miss counter — both
        // count inside the same once-guard.
        prop_assert_eq!(kind_sum(&serial, "point_cache/", "/miss") as usize, serial_uniques);
        prop_assert_eq!(kind_sum(&parallel, "point_cache/", "/miss") as usize, parallel_uniques);
        prop_assert_eq!(serial_uniques, parallel_uniques);

        // Misses are engine-invariant for both caches: the same unique
        // work happens exactly once either way.
        prop_assert_eq!(
            kind_sum(&serial, "layer_cache/", "/miss"),
            kind_sum(&parallel, "layer_cache/", "/miss")
        );

        // Point-cache accesses: same total, with serial hits split into
        // parallel hits + in-flight waits.
        let total = |c: &std::collections::BTreeMap<String, u64>, cache: &str| {
            kind_sum(c, cache, "/hit") + kind_sum(c, cache, "/miss")
                + kind_sum(c, cache, "/inflight_wait")
        };
        prop_assert_eq!(total(&serial, "point_cache/"), total(&parallel, "point_cache/"));
        prop_assert_eq!(
            kind_sum(&serial, "point_cache/", "/hit"),
            kind_sum(&parallel, "point_cache/", "/hit")
                + kind_sum(&parallel, "point_cache/", "/inflight_wait")
        );

        // Layer-cache accesses: the parallel pre-warm phase looks every
        // pre-warmed task up once more than the serial run (warm miss +
        // point-eval hit, vs. one serial point-eval miss). The Batch
        // records say exactly how many tasks were pre-warmed, so the
        // relation is exact, cross-checking counters against records.
        let prewarmed: u64 = parallel_events
            .iter()
            .filter_map(|e| match e {
                Event::Batch { record, .. } if record.stage == "engine/mapping" => {
                    Some(record.items)
                }
                _ => None,
            })
            .sum();
        prop_assert_eq!(
            total(&parallel, "layer_cache/"),
            total(&serial, "layer_cache/") + prewarmed
        );
    }
}
