//! Criterion micro-benchmarks for the building blocks the experiments
//! lean on: cost-model evaluation, mapping-space construction, mapping
//! optimization, bottleneck analysis, and one full DSE acquisition step.

use accel_model::{AcceleratorConfig, Mapping};
use criterion::{criterion_group, criterion_main, Criterion};
use edse_core::bottleneck::{dnn_latency_model, LayerCtx};
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CodesignEvaluator, EvalEngine, Evaluator};
use edse_core::space::{edge, edge_space};
use edse_telemetry::{Collector, MemorySink};
use mapper::{FixedMapper, LinearMapper, MappingOptimizer, MappingSpace, SpaceBudget};
use std::hint::black_box;
use workloads::{zoo, LayerShape};

fn layer() -> LayerShape {
    LayerShape::conv(1, 64, 64, 56, 56, 3, 3, 1)
}

fn bench_cost_model(c: &mut Criterion) {
    let cfg = AcceleratorConfig::edge_baseline();
    let l = layer();
    let m = Mapping::fixed_output_stationary(&l, &cfg);
    c.bench_function("cost_model/execute_layer", |b| {
        b.iter(|| black_box(cfg.execute(black_box(&l), black_box(&m))).unwrap())
    });
}

fn bench_mapping_space(c: &mut Criterion) {
    let cfg = AcceleratorConfig::edge_baseline();
    let l = layer();
    c.bench_function("mapper/space_build_top100", |b| {
        b.iter(|| black_box(MappingSpace::build(&l, &cfg, SpaceBudget::top(100))))
    });
    c.bench_function("mapper/linear_optimize_top50", |b| {
        let m = LinearMapper::new(50);
        b.iter(|| black_box(m.optimize(&l, &cfg)))
    });
    // The evaluation fast path's headline single-thread number: one full
    // linear mapping of one layer (space build + 9 orderings per tiling).
    c.bench_function("mapper/linear_layer", |b| {
        let m = LinearMapper::new(100);
        b.iter(|| black_box(m.optimize(&l, &cfg)))
    });
    // The same batch-1 query with a 2-way intra-layer worker budget, so
    // recorded speedups stay attributable to a thread count (results are
    // bit-identical to the serial variant; only wall-clock differs).
    c.bench_function("mapper/linear_layer_t2", |b| {
        let m = LinearMapper::new(100);
        b.iter(|| black_box(m.optimize_threaded(&l, &cfg, 2)))
    });
    // Space construction on hardware too small to meet the aggressive
    // thresholds: the auto-adjustment relaxes several rounds, so this
    // series measures the threshold-relaxation cost specifically.
    c.bench_function("mapper/space_build", |b| {
        let tiny = AcceleratorConfig::edge_minimum();
        b.iter(|| black_box(MappingSpace::build(&l, &tiny, SpaceBudget::paper_default())))
    });
}

fn bench_bottleneck(c: &mut Criterion) {
    let cfg = AcceleratorConfig::edge_baseline();
    let l = layer();
    let m = Mapping::fixed_output_stationary(&l, &cfg);
    let profile = cfg.execute(&l, &m).unwrap();
    let model = dnn_latency_model();
    let ctx = LayerCtx { cfg, profile };
    c.bench_function("bottleneck/analyze_layer", |b| {
        b.iter(|| black_box(model.analyze(black_box(&ctx), 2)))
    });
}

fn bench_dse(c: &mut Criterion) {
    c.bench_function("dse/point_evaluation_fixdf", |b| {
        let ev = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
        let p = ev.space().minimum_point();
        let mut bump = 0usize;
        b.iter(|| {
            // Vary the point so caching does not trivialize the benchmark.
            bump = (bump + 1) % 7;
            let q = p.with_index(0, bump);
            black_box(ev.evaluate(&q))
        })
    });
    c.bench_function("dse/explainable_20_evals", |b| {
        b.iter(|| {
            let ev = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
            let session = edse_core::SearchSession::new(
                dnn_latency_model(),
                DseConfig {
                    budget: 20,
                    ..DseConfig::default()
                },
            )
            .evaluator(&ev);
            let initial = ev.space().minimum_point();
            black_box(session.run(initial))
        })
    });
}

/// The evaluation engine's headline number: a 16-candidate batch through
/// `evaluate_batch`, serial vs. all-cores. Each iteration uses a fresh
/// evaluator so the caches start cold and the mapping work is real; the
/// parallel run must produce identical evaluations, just faster (the
/// speedup only shows on multi-core hosts — with one CPU the engine
/// resolves to a single thread and the two series coincide).
fn bench_batch_engine(c: &mut Criterion) {
    let space = edge_space();
    // 16 distinct configs: each point changes a NoC and a memory parameter,
    // so no layer-mapping work is shared between candidates.
    let points: Vec<_> = (0..16)
        .map(|i| {
            space
                .minimum_point()
                .with_index(edge::phys_links(1), 2 * i)
                .with_index(edge::PES, i % 4)
        })
        .collect();
    let make =
        || CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], LinearMapper::new(24));
    c.bench_function("engine/batch16_serial", |b| {
        b.iter(|| {
            let ev = make().with_engine(EvalEngine::serial());
            black_box(ev.evaluate_batch(&points))
        })
    });
    c.bench_function("engine/batch16_parallel", |b| {
        b.iter(|| {
            let ev = make();
            black_box(ev.evaluate_batch(&points))
        })
    });
    // The work-stealing prong's target shape: ONE candidate, many unique
    // layers. Explainable-DSE proposes a handful of candidates per
    // iteration (often one per predicted parameter value), so per-layer
    // mapping jobs — not per-candidate ones — are what must spread across
    // threads. Serial and threaded runs are bit-identical; the speedup
    // shows only on multi-core hosts (the CI container has 1 CPU).
    c.bench_function("engine/batch1_multilayer", |b| {
        let single = [space.minimum_point().with_index(edge::PES, 2)];
        b.iter(|| {
            let ev = make();
            black_box(ev.evaluate_batch(&single))
        })
    });
    // The same one-candidate batch with an explicit 2-thread engine, so
    // recorded executor speedups stay attributable to a thread count
    // (results are bit-identical to the serial variant; only wall-clock
    // differs — and on the 1-CPU CI container only spawn overhead does).
    c.bench_function("engine/batch1_multilayer_t2", |b| {
        let single = [space.minimum_point().with_index(edge::PES, 2)];
        b.iter(|| {
            let ev = make().with_engine(EvalEngine::with_threads(2));
            black_box(ev.evaluate_batch(&single))
        })
    });
    // Pure per-batch orchestration cost: a fully cached batch under a
    // 2-thread engine does no mapping or point work, so this round-trip
    // isolates what a batch pays just to distribute itself (scoped thread
    // spawns before the shared executor; a pool handoff after).
    c.bench_function("engine/spawn_overhead", |b| {
        let ev = make().with_engine(EvalEngine::with_threads(2));
        let _ = ev.evaluate_batch(&points);
        b.iter(|| black_box(ev.evaluate_batch(&points)))
    });
    // Telemetry overhead check: same batch with a live collector attached
    // (memory sink, metrics on — counters, histograms, and the v2 span
    // tree with id/parent bookkeeping all flow). The serial/parallel
    // series above run with the no-op collector, so comparing against
    // this series bounds the cost of instrumentation; the acceptance bar
    // is <2% regression for the *no-op* path and traced/untraced <= 1.25
    // (measured ≈ 1.05), recorded in results/json/bench_telemetry.json
    // and pinned by the report-crate test.
    c.bench_function("engine/batch16_traced", |b| {
        b.iter(|| {
            let collector = Collector::builder().sink(MemorySink::new()).build();
            let ev = make().with_telemetry(collector);
            black_box(ev.evaluate_batch(&points))
        })
    });
}

fn bench_sim(c: &mut Criterion) {
    let cfg = AcceleratorConfig::edge_baseline();
    let l = LayerShape::conv(1, 64, 32, 14, 14, 3, 3, 1);
    let m = Mapping::fixed_output_stationary(&l, &cfg);
    c.bench_function("sim/tile_pipeline_small_conv", |b| {
        b.iter(|| accel_model::simulate(&cfg, black_box(&l), black_box(&m), 2_000_000).unwrap())
    });
}

fn bench_space_size(c: &mut Criterion) {
    let l = LayerShape::conv(1, 64, 64, 224, 224, 3, 3, 1);
    let reference = AcceleratorConfig::edge_minimum();
    c.bench_function("mapper/table7_space_size", |b| {
        b.iter(|| black_box(mapper::layer_space_size(&l, &reference, 200, 0)))
    });
}

fn bench_workloads(c: &mut Criterion) {
    c.bench_function("workloads/unique_shapes_bert", |b| {
        let m = zoo::bert_base();
        b.iter(|| black_box(m.unique_shapes()))
    });
}

criterion_group!(
    benches,
    bench_cost_model,
    bench_mapping_space,
    bench_bottleneck,
    bench_dse,
    bench_batch_engine,
    bench_sim,
    bench_space_size,
    bench_workloads
);
criterion_main!(benches);
