//! Machine-readable experiment reports (`--json <path>`).
//!
//! Every figure/table binary renders human-readable tables on stdout; this
//! module is the parallel machine-checkable channel: a [`BenchReport`]
//! collects the run's deterministic outcomes — per-technique traces (best
//! feasible objective, iterations-to-incumbent, feasibility rate, every
//! sample's objective) plus experiment-specific scalar metrics — and
//! serializes them as one JSON document. Wall-clock times are deliberately
//! excluded so reports from different hosts (or interrupted-and-resumed
//! runs) are byte-comparable; the conformance crate pins these reports as
//! golden fixtures.

use crate::cli::BenchArgs;
use edse_core::cost::Trace;
use edse_telemetry::json::Json;

/// Schema tag stamped into every report, bumped on breaking shape changes.
pub const REPORT_SCHEMA: &str = "edse-bench-report/v1";

/// Accumulates one experiment run's deterministic results.
///
/// Build with [`BenchReport::new`], feed it traces and metrics as the
/// experiment produces them, then call [`BenchReport::write_if_requested`]
/// once at the end of `main`.
pub struct BenchReport {
    experiment: String,
    config: Json,
    traces: Vec<Json>,
    metrics: Vec<(String, Json)>,
}

/// The derived per-trace summary the report records (also reused by the
/// conformance crate's paper-bound assertions).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Best feasible objective, if any sample was feasible.
    pub best_objective: Option<f64>,
    /// 1-based index of the evaluation that produced the final incumbent
    /// (the paper's "iterations to reach the best solution").
    pub iterations_to_incumbent: Option<usize>,
    /// Fraction of evaluated samples meeting all constraints.
    pub feasibility_rate: f64,
    /// Number of feasible samples.
    pub feasible_evaluations: usize,
}

/// Summarizes a trace the way the report does.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let best = trace.best_feasible().map(|s| s.objective);
    let iterations_to_incumbent = best.map(|b| {
        trace
            .samples
            .iter()
            .position(|s| s.feasible && s.objective == b)
            .expect("best sample is in the trace")
            + 1
    });
    TraceSummary {
        best_objective: best,
        iterations_to_incumbent,
        feasibility_rate: trace.feasibility_rate(),
        feasible_evaluations: trace.samples.iter().filter(|s| s.feasible).count(),
    }
}

impl BenchReport {
    /// Starts a report for one experiment, recording the run's
    /// deterministic configuration (budgets, seed, models, preset — never
    /// wall-clock or host facts).
    pub fn new(experiment: &str, args: &BenchArgs) -> Self {
        BenchReport {
            experiment: experiment.to_string(),
            config: Json::obj(vec![
                ("iters", Json::Num(args.spec.budget as f64)),
                ("map_trials", Json::Num(args.spec.map_trials as f64)),
                ("seed", Json::Num(args.spec.seed as f64)),
                ("quick", Json::Bool(args.quick)),
                (
                    "models",
                    Json::Arr(
                        args.spec
                            .models
                            .iter()
                            .map(|m| Json::Str(m.clone()))
                            .collect(),
                    ),
                ),
            ]),
            traces: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records one technique run: the derived summary plus the full
    /// per-sample objective/feasibility series (non-finite objectives
    /// serialize as `null`). `label` distinguishes repeated techniques
    /// (e.g. per-model or per-setting runs).
    pub fn push_trace(&mut self, label: &str, trace: &Trace) {
        let s = summarize(trace);
        self.traces.push(Json::obj(vec![
            ("label", Json::Str(label.to_string())),
            ("technique", Json::Str(trace.technique.clone())),
            ("evaluations", Json::Num(trace.evaluations() as f64)),
            (
                "best_objective",
                s.best_objective.map(Json::Num).unwrap_or(Json::Null),
            ),
            (
                "iterations_to_incumbent",
                s.iterations_to_incumbent
                    .map(|n| Json::Num(n as f64))
                    .unwrap_or(Json::Null),
            ),
            ("feasibility_rate", Json::Num(s.feasibility_rate)),
            (
                "feasible_evaluations",
                Json::Num(s.feasible_evaluations as f64),
            ),
            (
                "objectives",
                Json::Arr(
                    trace
                        .samples
                        .iter()
                        .map(|smp| Json::Num(smp.objective))
                        .collect(),
                ),
            ),
            (
                "feasible",
                Json::Arr(
                    trace
                        .samples
                        .iter()
                        .map(|smp| Json::Bool(smp.feasible))
                        .collect(),
                ),
            ),
        ]));
    }

    /// Records one experiment-specific metric (kept in insertion order).
    /// Deterministic values only: counts, model outputs, analysis results —
    /// never timings.
    pub fn metric(&mut self, name: &str, value: Json) {
        self.metrics.push((name.to_string(), value));
    }

    /// The assembled report document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(REPORT_SCHEMA.to_string())),
            ("experiment", Json::Str(self.experiment.clone())),
            ("config", self.config.clone()),
            ("traces", Json::Arr(self.traces.clone())),
            ("metrics", Json::Obj(self.metrics.clone())),
        ])
    }

    /// Writes the report to `path` as a single JSON line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_line() + "\n")
    }

    /// Writes the report when the run asked for one (`--json <path>`);
    /// no-op otherwise. Exits with an error message when the file cannot
    /// be written, matching how the other output flags fail.
    pub fn write_if_requested(&self, args: &BenchArgs) {
        let Some(path) = &args.json else {
            return;
        };
        if let Err(e) = self.write_to(path) {
            eprintln!("cannot write report file {path}: {e}");
            std::process::exit(1);
        }
        println!("\nJSON report written to {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edse_core::cost::Sample;
    use edse_core::space::DesignPoint;

    fn trace() -> Trace {
        let mut t = Trace::new("demo");
        for (obj, feasible) in [(9.0, false), (5.0, true), (3.0, true), (4.0, true)] {
            t.samples.push(Sample {
                point: DesignPoint::new(vec![0]),
                objective: obj,
                constraint_values: vec![],
                feasible,
            });
        }
        t.wall_seconds = 123.0;
        t
    }

    #[test]
    fn summary_derives_incumbent_iteration() {
        let s = summarize(&trace());
        assert_eq!(s.best_objective, Some(3.0));
        assert_eq!(s.iterations_to_incumbent, Some(3));
        assert_eq!(s.feasible_evaluations, 3);
        assert!((s.feasibility_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_summarizes_to_nulls() {
        let s = summarize(&Trace::new("x"));
        assert_eq!(s.best_objective, None);
        assert_eq!(s.iterations_to_incumbent, None);
        assert_eq!(s.feasible_evaluations, 0);
    }

    #[test]
    fn report_json_has_schema_and_excludes_wall_clock() {
        let args = BenchArgs::parse_from(&["--iters", "4", "--seed", "7"], 100);
        let mut report = BenchReport::new("unit_test", &args);
        report.push_trace("demo-run", &trace());
        report.metric("answer", Json::Num(42.0));
        let line = report.to_json().to_line();
        assert!(line.contains("edse-bench-report/v1"));
        assert!(line.contains("\"experiment\":\"unit_test\""));
        assert!(line.contains("\"iterations_to_incumbent\":3"));
        assert!(line.contains("\"answer\":42"));
        // The trace carries wall_seconds = 123; the report must not.
        assert!(
            !line.contains("123"),
            "wall-clock leaked into report: {line}"
        );
        assert!(
            !line.contains("wall"),
            "wall-clock leaked into report: {line}"
        );
        // And it parses back as one JSON document.
        edse_telemetry::json::parse(&line).unwrap();
    }

    #[test]
    fn write_if_requested_is_a_noop_without_flag() {
        let args = BenchArgs::parse_from(&[] as &[&str], 10);
        BenchReport::new("x", &args).write_if_requested(&args);
    }

    /// The checked-in mapper kernel-v2 bench record stays schema-valid and
    /// keeps documenting the acceptance bar: the *single-threaded*
    /// `mapper/linear_layer` variant (threads = 1 — the honest number on a
    /// 1-CPU host, and the variant every intra-layer speedup is measured
    /// against) is >= 2x faster than the PR-5 fast path (before_ns =
    /// 484386, i.e. after_ns <= 242193).
    #[test]
    fn recorded_mapper_bench_report_parses_and_holds_the_bar() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/json/bench_mapper.json"
        );
        let line = std::fs::read_to_string(path).expect("results/json/bench_mapper.json");
        let doc = edse_telemetry::json::parse(line.trim()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        let metric = |name: &str| {
            doc.get("metrics")
                .and_then(|m| m.get(name))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        // The pinned variant must be the serial sweep: a multi-thread
        // number would conflate intra-layer parallelism with the kernel.
        let threads = metric("mapper/linear_layer/threads");
        assert_eq!(threads, 1.0, "pinned variant must be single-threaded");
        let speedup = metric("mapper/linear_layer/speedup");
        assert!(
            speedup >= 2.0,
            "recorded speedup {speedup} below the 2x bar"
        );
        let before = metric("mapper/linear_layer/before_ns");
        let after = metric("mapper/linear_layer/after_ns");
        assert_eq!(
            before, 484386.0,
            "baseline must stay the PR-5 fast-path median"
        );
        assert!(
            after <= 242_193.0,
            "after_ns {after} misses the <= 242193 ns target"
        );
        assert!(
            (before / after - speedup).abs() < 0.01,
            "speedup ratio drifted"
        );
        // Every recorded mapper-kernel metric attributes its thread count.
        for variant in [
            "mapper/linear_layer_t2",
            "mapper/space_build",
            "mapper/space_build_top100",
            "engine/batch1_multilayer",
        ] {
            let t = metric(&format!("{variant}/threads"));
            assert!(t >= 1.0, "{variant} must record a thread count");
        }
        let t2 = metric("mapper/linear_layer_t2/threads");
        assert_eq!(t2, 2.0, "t2 variant must be attributed to 2 workers");
    }

    /// The checked-in telemetry-overhead record stays schema-valid and
    /// keeps documenting the acceptance bar: a live collector (metrics +
    /// span tree + flush) costs at most 25% over the no-op path on the
    /// `engine/batch16` workload.
    #[test]
    fn recorded_telemetry_bench_report_parses_and_holds_the_bar() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/json/bench_telemetry.json"
        );
        let line = std::fs::read_to_string(path).expect("results/json/bench_telemetry.json");
        let doc = edse_telemetry::json::parse(line.trim()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        let metric = |name: &str| {
            doc.get("metrics")
                .and_then(|m| m.get(name))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        let ratio = metric("engine/batch16_traced_ratio");
        assert!(
            ratio <= 1.25,
            "recorded traced/untraced ratio {ratio} above the 1.25 bar"
        );
        let untraced = metric("engine/batch16_untraced_ns");
        let traced = metric("engine/batch16_traced_ns");
        assert!(
            (traced / untraced - ratio).abs() < 0.01,
            "overhead ratio drifted from the recorded timings"
        );
    }

    /// The checked-in disk-cache warm-start record stays schema-valid and
    /// keeps documenting the acceptance bar: a repeated identical run over
    /// the same `--cache-dir` hits the disk tier >= 99% of the time and is
    /// faster than the cold run.
    #[test]
    fn recorded_diskcache_bench_report_parses_and_holds_the_bar() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/json/bench_diskcache.json"
        );
        let line = std::fs::read_to_string(path).expect("results/json/bench_diskcache.json");
        let doc = edse_telemetry::json::parse(line.trim()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        let metric = |name: &str| {
            doc.get("metrics")
                .and_then(|m| m.get(name))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        let hit_rate = metric("disk_cache/warm_hit_rate");
        assert!(hit_rate >= 0.99, "recorded hit rate {hit_rate} below 0.99");
        let (hits, misses) = (
            metric("disk_cache/warm_hits"),
            metric("disk_cache/warm_misses"),
        );
        assert!(
            (hits / (hits + misses) - hit_rate).abs() < 1e-6,
            "hit rate inconsistent with hit/miss counts"
        );
        let (cold, warm) = (metric("disk_cache/cold_ms"), metric("disk_cache/warm_ms"));
        let speedup = metric("disk_cache/speedup");
        assert!(speedup >= 1.0, "warm must not be slower than cold");
        assert!(
            (cold / warm - speedup).abs() < 0.01,
            "speedup ratio drifted"
        );
    }

    /// The checked-in shared-executor record stays schema-valid and keeps
    /// documenting the acceptance bar: `engine/batch1_multilayer` against
    /// the pinned PR-9 baseline (before_ns = 1420000, the spawn-per-batch
    /// scoped engine) is >= 1.5x faster on the warm shared pool + shared
    /// `MappingSpace` memo, and every variant attributes its engine
    /// worker budget.
    #[test]
    fn recorded_executor_bench_report_parses_and_holds_the_bar() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/json/bench_executor.json"
        );
        let line = std::fs::read_to_string(path).expect("results/json/bench_executor.json");
        let doc = edse_telemetry::json::parse(line.trim()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(REPORT_SCHEMA)
        );
        let metric = |name: &str| {
            doc.get("metrics")
                .and_then(|m| m.get(name))
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        let before = metric("engine/batch1_multilayer/before_ns");
        assert_eq!(
            before, 1_420_000.0,
            "baseline must stay the PR-9 scoped-engine median"
        );
        let speedup = metric("engine/batch1_multilayer/speedup");
        assert!(
            speedup >= 1.5,
            "recorded speedup {speedup} below the 1.5x bar"
        );
        let after = metric("engine/batch1_multilayer/after_ns");
        assert!(
            (before / after - speedup).abs() < 0.01,
            "speedup ratio drifted"
        );
        // Every recorded variant attributes its worker budget, and each
        // ratio stays consistent with its own before/after pair.
        for (variant, threads) in [
            ("engine/batch1_multilayer", 1.0),
            ("engine/batch1_multilayer_t2", 2.0),
            ("engine/spawn_overhead", 2.0),
        ] {
            assert_eq!(
                metric(&format!("{variant}/threads")),
                threads,
                "{variant} thread attribution"
            );
            let (b, a, s) = (
                metric(&format!("{variant}/before_ns")),
                metric(&format!("{variant}/after_ns")),
                metric(&format!("{variant}/speedup")),
            );
            assert!(s >= 1.0, "{variant} must not regress");
            assert!((b / a - s).abs() < 0.01, "{variant} speedup ratio drifted");
        }
    }
}
