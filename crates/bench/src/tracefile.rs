//! Shared trace-file loading for the trace analysis binaries
//! (`trace_report`, `edse-trace`): reads a `--trace-out` JSONL trace
//! into [`Event`]s with precise `path:line:col` diagnostics on any
//! malformed line, and rejects empty traces — a truncated or clobbered
//! file must fail loudly, not report "nothing happened".

use edse_telemetry::{json, Event};
use std::fmt;
use std::path::Path;

/// Why a trace file could not be loaded. Rendered via [`fmt::Display`]
/// in the exact shape the analysis binaries print before exiting 1.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read at all.
    Io {
        /// The path as given on the command line.
        path: String,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// One line failed to parse as a telemetry event.
    Parse {
        /// The path as given on the command line.
        path: String,
        /// 1-based line number of the defect.
        line: usize,
        /// 1-based column of the defect (see [`locate_failure`]).
        col: usize,
        /// The most precise parser message available.
        message: String,
        /// The offending line, verbatim.
        record: String,
    },
    /// The file was readable but contains no events.
    Empty {
        /// The path as given on the command line.
        path: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, error } => write!(f, "cannot read {path}: {error}"),
            TraceError::Parse {
                path,
                line,
                col,
                message,
                record,
            } => write!(
                f,
                "{path}:{line}:{col}: unparseable trace line: {message}\n  offending record: {record}"
            ),
            TraceError::Empty { path } => write!(f, "{path}: empty trace"),
        }
    }
}

/// Pinpoints why a trace line failed to parse: the 1-based column and
/// the most precise message available.
///
/// [`Event::parse_json_line`] reports event-level problems (unknown
/// kind, missing field) without a position, so the line is re-parsed as
/// plain JSON: a syntax failure there carries the byte offset of the
/// defect (column = byte + 1); a line that *is* valid JSON but not a
/// valid event gets column 1 with the event-level message.
pub fn locate_failure(line: &str, error: &str) -> (usize, String) {
    match json::parse(line) {
        Err(e) => (e.byte + 1, e.message),
        Ok(_) => (1, error.to_string()),
    }
}

/// Loads every event from a JSONL trace. Blank lines are skipped; any
/// unparseable line or an empty trace is a [`TraceError`].
pub fn load_events(path: &str) -> Result<Vec<Event>, TraceError> {
    let text = std::fs::read_to_string(Path::new(path)).map_err(|error| TraceError::Io {
        path: path.to_string(),
        error,
    })?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse_json_line(line) {
            Ok(event) => events.push(event),
            Err(e) => {
                let (col, message) = locate_failure(line, &e);
                return Err(TraceError::Parse {
                    path: path.to_string(),
                    line: i + 1,
                    col,
                    message,
                    record: line.to_string(),
                });
            }
        }
    }
    if events.is_empty() {
        return Err(TraceError::Empty {
            path: path.to_string(),
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("edse-tracefile-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn syntax_errors_carry_the_defects_column() {
        // Broken mid-object: the value after "t_us": is missing, so the
        // parser gives up on the `}` at byte 21 — column 22.
        let line = r#"{"kind":"log","t_us":}"#;
        let err = Event::parse_json_line(line).unwrap_err();
        let (col, message) = locate_failure(line, &err);
        assert_eq!(col, 22, "column must point at the defect, got {message}");
        assert!(!message.is_empty());
    }

    #[test]
    fn valid_json_invalid_event_points_at_column_one() {
        let line = r#"{"kind":"no-such-event"}"#;
        let err = Event::parse_json_line(line).unwrap_err();
        let (col, message) = locate_failure(line, &err);
        assert_eq!(col, 1);
        // The event-level message survives verbatim.
        assert_eq!(message, err);
    }

    #[test]
    fn trailing_garbage_is_located_after_the_document() {
        let line = r#"{"kind":"log"} extra"#;
        let err = Event::parse_json_line(line).unwrap_err();
        let (col, _) = locate_failure(line, &err);
        assert_eq!(col, 16, "column of the first trailing character");
    }

    #[test]
    fn well_formed_traces_load_with_blank_lines_skipped() {
        let path = tmp(
            "ok.jsonl",
            "{\"ev\":\"log\",\"t_us\":1,\"level\":\"info\",\"message\":\"hi\"}\n\n\
             {\"ev\":\"span_exit\",\"t_us\":9,\"name\":\"dse/run\",\"id\":1,\"elapsed_us\":9}\n",
        );
        let events = load_events(path.to_str().unwrap()).unwrap();
        assert_eq!(events.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_lines_fail_with_path_line_col() {
        let path = tmp(
            "bad.jsonl",
            "{\"ev\":\"log\",\"t_us\":1,\"level\":\"info\",\"message\":\"hi\"}\nnot json\n",
        );
        let err = load_events(path.to_str().unwrap()).unwrap_err();
        match &err {
            TraceError::Parse { line, record, .. } => {
                assert_eq!(*line, 2);
                assert_eq!(record, "not json");
            }
            other => panic!("expected Parse error, got {other}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains(":2:"), "{rendered}");
        assert!(
            rendered.contains("offending record: not json"),
            "{rendered}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_and_whitespace_only_traces_are_errors() {
        for contents in ["", "\n\n  \n"] {
            let path = tmp("empty.jsonl", contents);
            let err = load_events(path.to_str().unwrap()).unwrap_err();
            assert!(
                matches!(err, TraceError::Empty { .. }),
                "expected Empty, got {err}"
            );
            assert!(err.to_string().ends_with("empty trace"));
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn missing_files_are_io_errors() {
        let err = load_events("/no/such/trace.jsonl").unwrap_err();
        assert!(matches!(err, TraceError::Io { .. }));
        assert!(err
            .to_string()
            .starts_with("cannot read /no/such/trace.jsonl"));
    }
}
