//! Experiment harness shared by the figure/table-regenerating binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index). This library
//! provides the common pieces: CLI argument handling with a `--quick`
//! preset, the technique registry (every baseline plus Explainable-DSE,
//! each in the fixed-dataflow and codesign settings), and plain-text table
//! rendering so each binary prints the same rows/series the paper reports.

use baselines::{
    BaselineSession, BayesianOpt, ConfuciuxRl, DseTechnique, GeneticAlgorithm, GridSearch,
    HyperMapperLike, RandomSearch, SimulatedAnnealing,
};
use edse_core::bottleneck::dnn_latency_model;
use edse_core::cost::Trace;
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::edge_space;
use edse_core::{JobSpec, SearchSession};
use edse_telemetry::Collector;
use mapper::{FixedMapper, LinearMapper, MappingOptimizer, RandomMapper};
use workloads::DnnModel;

pub mod cli;
pub mod report;
pub mod toy;
pub mod tracefile;
pub use cli::{BenchArgs, SessionOpts};
pub use report::{BenchReport, TraceSummary};
pub use tracefile::{load_events, TraceError};

/// How mappings are obtained during hardware exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapperKind {
    /// The fixed optimized output-stationary dataflow (the paper's
    /// "-FixDF" setting).
    FixedDataflow,
    /// Tightly coupled codesign via the pruned-space linear mapper with a
    /// top-`N` budget.
    Linear(usize),
    /// Timeloop-style random mapping search with the given trials (the
    /// paper's black-box codesign setting).
    Random(usize),
}

impl MapperKind {
    fn build(self, seed: u64) -> Box<dyn MappingOptimizer> {
        match self {
            MapperKind::FixedDataflow => Box::new(FixedMapper),
            MapperKind::Linear(n) => Box::new(LinearMapper::new(n)),
            MapperKind::Random(trials) => Box::new(RandomMapper::new(trials, seed)),
        }
    }

    /// Suffix used in technique labels (`-fixdf` / `-codesign`).
    pub fn suffix(self) -> &'static str {
        match self {
            MapperKind::FixedDataflow => "-fixdf",
            _ => "-codesign",
        }
    }
}

/// The DSE techniques of the paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechniqueKind {
    /// Grid search (non-feedback).
    Grid,
    /// Random search (non-feedback).
    Random,
    /// Simulated annealing.
    Annealing,
    /// Genetic algorithm.
    Genetic,
    /// Vanilla Bayesian optimization.
    Bayesian,
    /// HyperMapper-2.0-style constrained Bayesian optimization.
    HyperMapper,
    /// Confuciux-style constrained RL.
    Rl,
    /// Explainable-DSE (this paper).
    Explainable,
}

impl TechniqueKind {
    /// All techniques in the paper's row order.
    pub const ALL: [TechniqueKind; 8] = [
        TechniqueKind::Grid,
        TechniqueKind::Random,
        TechniqueKind::Annealing,
        TechniqueKind::Genetic,
        TechniqueKind::Bayesian,
        TechniqueKind::HyperMapper,
        TechniqueKind::Rl,
        TechniqueKind::Explainable,
    ];

    /// Paper-style row label, e.g. `"HyperMapper 2.0"`.
    pub fn label(self) -> &'static str {
        match self {
            TechniqueKind::Grid => "Grid Search",
            TechniqueKind::Random => "Random Search",
            TechniqueKind::Annealing => "Simulated Annealing",
            TechniqueKind::Genetic => "Genetic Algorithm",
            TechniqueKind::Bayesian => "Bayesian Optimization",
            TechniqueKind::HyperMapper => "HyperMapper 2.0",
            TechniqueKind::Rl => "Reinforcement Learning",
            TechniqueKind::Explainable => "Explainable-DSE",
        }
    }
}

/// Runs Explainable-DSE and returns its trace together with the
/// evaluation counts at which each exploration phase converged (the first
/// entry is the paper's "iterations to converge"). Telemetry is wired
/// through both the DSE loop (iteration records) and the evaluator
/// (cache/stage metrics); counter deltas are flushed at the end, so each
/// run snapshots its own traffic into the trace.
pub fn run_explainable_detailed(
    mapper: MapperKind,
    models: Vec<DnnModel>,
    budget: usize,
    seed: u64,
    telemetry: &Collector,
    session: &SessionOpts,
) -> (Trace, Vec<usize>) {
    let mut evaluator = CodesignEvaluator::new(edge_space(), models, mapper.build(seed))
        .with_telemetry(telemetry.clone());
    if let Some(disk) = &session.disk {
        evaluator = evaluator.with_disk_cache(disk.clone());
    } else if let Some(err) = &session.disk_error {
        evaluator = evaluator.with_disk_cache_error(err.clone());
    }
    let mut search = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget,
            seed,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator)
    .telemetry(telemetry.clone());
    if let Some(path) = session.path_for(&format!("explainable{}", mapper.suffix())) {
        search = search.spec(&JobSpec {
            checkpoint: Some(path),
            checkpoint_every: session.every,
            resume: session.resume,
            ..JobSpec::default()
        });
    }
    let initial = evaluator.space().minimum_point();
    let result = search.run(initial);
    telemetry.flush();
    let converged = result.converged_after().to_vec();
    let mut trace = result.into_trace();
    trace.technique = format!("{}{}", trace.technique, mapper.suffix());
    (trace, converged)
}

/// Runs one technique on one workload set and returns the trace.
///
/// Explainable-DSE emits live iteration records; the black-box baselines
/// go through a [`BaselineSession`], which reconstructs comparable
/// records post hoc. Either way the evaluator reports cache and stage
/// metrics, and the run ends with a counter/histogram flush. When
/// `session` enables checkpointing, each technique snapshots to its own
/// `<base>.<technique><suffix>` file (see [`SessionOpts::path_for`]);
/// when it carries a disk cache (`--cache-dir`), the evaluator
/// warm-starts layer mappings from it and persists new ones.
pub fn run_technique(
    kind: TechniqueKind,
    mapper: MapperKind,
    models: Vec<DnnModel>,
    budget: usize,
    seed: u64,
    telemetry: &Collector,
    session: &SessionOpts,
) -> Trace {
    let mut evaluator = CodesignEvaluator::new(edge_space(), models, mapper.build(seed))
        .with_telemetry(telemetry.clone());
    if let Some(disk) = &session.disk {
        evaluator = evaluator.with_disk_cache(disk.clone());
    } else if let Some(err) = &session.disk_error {
        evaluator = evaluator.with_disk_cache_error(err.clone());
    }
    let mut trace = match kind {
        TechniqueKind::Explainable => {
            let mut search = SearchSession::new(
                dnn_latency_model(),
                DseConfig {
                    budget,
                    seed,
                    ..DseConfig::default()
                },
            )
            .evaluator(&evaluator)
            .telemetry(telemetry.clone());
            if let Some(path) = session.path_for(&format!("explainable{}", mapper.suffix())) {
                search = search.spec(&JobSpec {
                    checkpoint: Some(path),
                    checkpoint_every: session.every,
                    resume: session.resume,
                    ..JobSpec::default()
                });
            }
            let initial = evaluator.space().minimum_point();
            search.run(initial).into_trace()
        }
        other => {
            let mut technique: Box<dyn DseTechnique> = match other {
                TechniqueKind::Grid => Box::new(GridSearch),
                TechniqueKind::Random => Box::new(RandomSearch::new(seed)),
                TechniqueKind::Annealing => Box::new(SimulatedAnnealing::new(seed)),
                TechniqueKind::Genetic => Box::new(GeneticAlgorithm::new(16, seed)),
                TechniqueKind::Bayesian => Box::new(BayesianOpt::new(seed)),
                TechniqueKind::HyperMapper => Box::new(HyperMapperLike::new(seed)),
                TechniqueKind::Rl => Box::new(ConfuciuxRl::new(seed)),
                TechniqueKind::Explainable => unreachable!("handled above"),
            };
            let label = format!("{}{}", technique.name(), mapper.suffix());
            let mut run = BaselineSession::new(technique.as_mut()).telemetry(telemetry.clone());
            if let Some(path) = session.path_for(&label) {
                run = run.spec(&JobSpec {
                    checkpoint: Some(path),
                    checkpoint_every: session.every,
                    resume: session.resume,
                    ..JobSpec::default()
                });
            }
            run.run(&evaluator, budget)
        }
    };
    telemetry.flush();
    trace.technique = format!("{}{}", trace.technique, mapper.suffix());
    trace
}

/// Formats a latency cell the way Table 2 does: the value, `-` when no
/// feasible design was found, and `-*` when not even area/power were met.
pub fn latency_cell(trace: &Trace, constraints: &[edse_core::Constraint]) -> String {
    match trace.best_feasible() {
        Some(s) => format!("{:.1}", s.objective),
        None => {
            let any_area_power = trace.samples.iter().any(|s| {
                s.constraint_values
                    .iter()
                    .zip(constraints)
                    .take(2)
                    .all(|(v, c)| c.satisfied(*v))
            });
            if any_area_power {
                "-".into()
            } else {
                "-*".into()
            }
        }
    }
}

/// Prints a plain-text table: header row then aligned data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>width$}", width = w))
            .collect();
        println!("{}", parts.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// The paper's edge constraints for a workload set (used for reporting).
pub fn constraints_for(models: &[DnnModel]) -> Vec<edse_core::Constraint> {
    let evaluator = CodesignEvaluator::new(edge_space(), models.to_vec(), FixedMapper);
    evaluator.constraints().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::zoo;

    #[test]
    fn technique_registry_runs_every_kind_briefly() {
        for kind in TechniqueKind::ALL {
            let t = run_technique(
                kind,
                MapperKind::FixedDataflow,
                vec![zoo::resnet18()],
                8,
                3,
                &Collector::noop(),
                &SessionOpts::none(),
            );
            assert!(t.evaluations() <= 8, "{:?}", kind);
            assert!(t.technique.ends_with("-fixdf"));
        }
    }

    #[test]
    fn latency_cell_distinguishes_failure_modes() {
        let t = run_technique(
            TechniqueKind::Explainable,
            MapperKind::FixedDataflow,
            vec![zoo::resnet18()],
            60,
            3,
            &Collector::noop(),
            &SessionOpts::none(),
        );
        let constraints = constraints_for(&[zoo::resnet18()]);
        let cell = latency_cell(&t, &constraints);
        assert!(!cell.is_empty());
    }

    #[test]
    fn args_quick_preset_scales_down() {
        let a = BenchArgs::parse_from(&[] as &[&str], 2500);
        assert!(a.quick);
        assert!(a.models_or(&Collector::noop(), vec![zoo::resnet18()]).len() == 1);
    }

    #[test]
    fn run_technique_streams_a_complete_trace() {
        use edse_telemetry::{Event, MemorySink};
        let sink = MemorySink::new();
        let collector = Collector::builder().sink(sink.clone()).build();
        let t = run_technique(
            TechniqueKind::Explainable,
            MapperKind::FixedDataflow,
            vec![zoo::resnet18()],
            12,
            3,
            &collector,
            &SessionOpts::none(),
        );
        assert!(t.evaluations() <= 12);
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(e, Event::Iteration { .. })));
        assert!(events.iter().any(|e| matches!(e, Event::Counters { .. })));
        // Every run ends in a flush, so the point-cache traffic snapshot
        // is present with real misses recorded.
        let misses: u64 = events
            .iter()
            .filter_map(|e| match e {
                Event::Counters { deltas, .. } => Some(
                    deltas
                        .iter()
                        .filter(|(k, _)| k.starts_with("point_cache/") && k.ends_with("/miss"))
                        .map(|(_, v)| *v)
                        .sum::<u64>(),
                ),
                _ => None,
            })
            .sum();
        assert!(misses > 0, "flush must snapshot point-cache misses");
    }
}
