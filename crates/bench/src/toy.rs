//! The paper's Fig. 4 toy setting, shared by `fig04_toy_trace` and the
//! conformance suite: a two-parameter exploration (#PEs x shared-memory
//! size) for a late ResNet convolution, with every other parameter frozen
//! mid-range. Small enough that a full search runs in well under a second,
//! which makes it the standard fixture for paper-bound assertions
//! (explainable vs black-box iterations-to-target, as in Fig. 4/11).

use edse_core::space::{edge, DesignSpace, ParamDef};
use workloads::constraints::ThroughputTarget;
use workloads::model::{DnnModel, Layer};
use workloads::LayerShape;

/// The edge space with every parameter except #PEs and L2 frozen to a
/// workable mid value (single-option domains).
pub fn toy_space() -> DesignSpace {
    let full = edse_core::space::edge_space();
    let params = full
        .params()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i == edge::PES || i == edge::L2_KB {
                p.clone()
            } else {
                let values = p.values();
                let mid = values[values.len() - 1];
                ParamDef::new(p.name().to_string(), vec![mid])
            }
        })
        .collect();
    DesignSpace::new(params)
}

/// The single CONV5_2-class workload of the toy setting.
pub fn single_layer_model() -> DnnModel {
    DnnModel::new(
        "ResNet-CONV5_2",
        vec![Layer::new(
            "conv5_2b",
            LayerShape::conv(1, 512, 512, 7, 7, 3, 3, 1),
            1,
        )],
        ThroughputTarget::fps(40.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_space_frees_exactly_two_parameters() {
        let space = toy_space();
        let free: Vec<usize> = space
            .params()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.len() > 1)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(free, vec![edge::PES, edge::L2_KB]);
    }

    #[test]
    fn toy_model_is_a_single_conv() {
        let m = single_layer_model();
        assert_eq!(m.layer_count(), 1);
        assert_eq!(m.unique_shape_count(), 1);
    }
}
