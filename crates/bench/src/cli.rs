//! Command-line handling shared by every figure/table binary.
//!
//! Historically each binary re-parsed its own flags; the logic now lives
//! here once, as [`BenchArgs::parse_from`] over a plain argument slice so
//! the parser is unit-testable without touching the process environment.
//! This is also where the checkpoint/resume flags (`--checkpoint`,
//! `--resume`, `--checkpoint-every`) are hosted, feeding
//! [`SessionOpts`] into the technique runners.

use edse_core::DiskCache;
use edse_telemetry::{Collector, JsonlSink, Level, PrometheusSink, StderrSink};
use std::path::PathBuf;
use std::sync::Arc;
use workloads::{zoo, DnnModel};

/// Common experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Hardware-DSE evaluation budget (paper: 2500 static / 100 dynamic).
    pub iters: usize,
    /// Mapping trials per layer for black-box codesign mappers
    /// (paper: 10000).
    pub map_trials: usize,
    /// Random seed.
    pub seed: u64,
    /// Selected model names (empty = the experiment's default set).
    pub models: Vec<String>,
    /// Whether the `--quick` preset was chosen.
    pub quick: bool,
    /// JSONL trace destination (`--trace-out <path>`); `None` keeps
    /// telemetry metrics off entirely.
    pub trace_out: Option<String>,
    /// Prometheus text-format metrics snapshot destination
    /// (`--metrics-out <path>`), rewritten at every collector flush —
    /// the scrape surface for dashboards. Activates metric collection
    /// like `--trace-out` does.
    pub metrics_out: Option<String>,
    /// Whether `--verbose` lowers the stderr log threshold to `Info`
    /// (progress chatter); the default shows only warnings and errors.
    pub verbose: bool,
    /// Checkpoint file base path (`--checkpoint <path>`); each technique
    /// run snapshots to `<path>.<technique>` (see
    /// [`SessionOpts::path_for`]).
    pub checkpoint: Option<String>,
    /// Whether `--resume` continues from existing checkpoint files.
    pub resume: bool,
    /// Snapshot cadence in search steps / unique evaluations
    /// (`--checkpoint-every <k>`, default 10).
    pub checkpoint_every: usize,
    /// Machine-readable result destination (`--out <path>`), used by the
    /// binaries that support it (e.g. `fig04_toy_trace`).
    pub out: Option<String>,
    /// Structured [`crate::report::BenchReport`] destination
    /// (`--json <path>`); every figure/table binary supports it.
    pub json: Option<String>,
    /// Persistent evaluation-cache directory (`--cache-dir <path>`):
    /// layer mappings are warm-started from (and appended to) an
    /// [`edse_core::DiskCache`] there, shared across binaries and runs.
    /// `None` keeps the disk tier off.
    pub cache_dir: Option<String>,
    /// Whether `--no-disk-cache` opts this run out of `--cache-dir`
    /// (useful when a wrapper script passes the directory
    /// unconditionally).
    pub no_disk_cache: bool,
    /// Diagnostics accumulated while parsing (unknown flags, missing
    /// values, conflicting paths); surfaced as `Warn` logs once
    /// [`BenchArgs::telemetry`] builds the collector.
    pub warnings: Vec<String>,
}

/// Checkpoint/resume and persistent-cache options carried from the CLI
/// into a technique run.
#[derive(Debug, Clone, Default)]
pub struct SessionOpts {
    /// Checkpoint file base path; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Whether to resume from an existing snapshot.
    pub resume: bool,
    /// Snapshot cadence (clamped to at least 1 at use sites).
    pub every: usize,
    /// The open persistent evaluation cache (`--cache-dir`), shared by
    /// every evaluator the run builds; `None` keeps evaluation purely
    /// in-memory.
    pub disk: Option<Arc<DiskCache>>,
}

impl SessionOpts {
    /// The disabled options: no checkpointing, no resume.
    pub fn none() -> Self {
        SessionOpts::default()
    }

    /// The per-technique snapshot path: `<base>.<label>`, so several
    /// techniques sharing one `--checkpoint` base in a single binary
    /// don't clobber each other's snapshots.
    pub fn path_for(&self, label: &str) -> Option<PathBuf> {
        self.checkpoint.as_ref().map(|base| {
            let mut os = base.clone().into_os_string();
            os.push(".");
            os.push(label);
            PathBuf::from(os)
        })
    }
}

impl BenchArgs {
    /// Parses `--iters N --trials N --seed N --models a,b --quick --full
    /// --trace-out PATH --verbose --checkpoint PATH --resume
    /// --checkpoint-every K --out PATH --json PATH --cache-dir PATH
    /// --no-disk-cache` from an argument slice (without the program
    /// name).
    ///
    /// `default_iters` applies to the full setting; `--quick` divides the
    /// budgets so every experiment finishes in minutes on a laptop. Quick
    /// is the default; pass `--full` for paper-scale budgets.
    ///
    /// Parsing never fails: unknown flags, value-taking flags missing
    /// their value, `--resume` without `--checkpoint`, and `--json`
    /// colliding with `--out`/`--trace-out` all land in
    /// [`BenchArgs::warnings`] (logged at `Warn` by
    /// [`BenchArgs::telemetry`]) while the run proceeds on defaults.
    pub fn parse_from<S: AsRef<str>>(argv: &[S], default_iters: usize) -> Self {
        let mut args = Self {
            iters: default_iters,
            map_trials: 10_000,
            seed: 1,
            models: Vec::new(),
            quick: true,
            trace_out: None,
            metrics_out: None,
            verbose: false,
            checkpoint: None,
            resume: false,
            checkpoint_every: 10,
            out: None,
            json: None,
            cache_dir: None,
            no_disk_cache: false,
            warnings: Vec::new(),
        };
        // Reads the value of the flag at `argv[i]`; warns when the
        // argument list ends before the value.
        fn take<S: AsRef<str>>(argv: &[S], i: usize, warnings: &mut Vec<String>) -> Option<String> {
            let v = argv.get(i + 1).map(|v| v.as_ref().to_string());
            if v.is_none() {
                warnings.push(format!(
                    "flag {} needs a value, using the default",
                    argv[i].as_ref()
                ));
            }
            v
        }
        let mut explicit_iters = None;
        let mut explicit_trials = None;
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_ref() {
                "--iters" => {
                    explicit_iters = take(argv, i, &mut args.warnings).and_then(|v| v.parse().ok());
                    i += 1;
                }
                "--trials" => {
                    explicit_trials =
                        take(argv, i, &mut args.warnings).and_then(|v| v.parse().ok());
                    i += 1;
                }
                "--seed" => {
                    args.seed = take(argv, i, &mut args.warnings)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(1);
                    i += 1;
                }
                "--models" => {
                    args.models = take(argv, i, &mut args.warnings)
                        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
                        .unwrap_or_default();
                    i += 1;
                }
                "--trace-out" => {
                    args.trace_out = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--metrics-out" => {
                    args.metrics_out = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--checkpoint" => {
                    args.checkpoint = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--checkpoint-every" => {
                    args.checkpoint_every = take(argv, i, &mut args.warnings)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(10);
                    i += 1;
                }
                "--out" => {
                    args.out = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--json" => {
                    args.json = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--cache-dir" => {
                    args.cache_dir = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--no-disk-cache" => args.no_disk_cache = true,
                "--resume" => args.resume = true,
                "--verbose" => args.verbose = true,
                "--full" => args.quick = false,
                "--quick" => args.quick = true,
                other => args
                    .warnings
                    .push(format!("ignoring unknown argument {other}")),
            }
            i += 1;
        }
        if args.quick {
            args.iters = default_iters.div_ceil(10).max(30);
            args.map_trials = 300;
        }
        if let Some(v) = explicit_iters {
            args.iters = v;
        }
        if let Some(v) = explicit_trials {
            args.map_trials = v;
        }
        if args.resume && args.checkpoint.is_none() {
            args.warnings
                .push("--resume has no effect without --checkpoint".into());
        }
        if args.no_disk_cache && args.cache_dir.is_none() {
            args.warnings
                .push("--no-disk-cache has no effect without --cache-dir".into());
        }
        for (flag, other) in [("--out", &args.out), ("--trace-out", &args.trace_out)] {
            if args.json.is_some() && args.json == *other {
                args.warnings.push(format!(
                    "--json and {flag} point at the same file; the later writer clobbers it"
                ));
            }
        }
        args
    }

    /// Parses from the process arguments (see [`BenchArgs::parse_from`]).
    pub fn parse(default_iters: usize) -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_from(&argv, default_iters)
    }

    /// The checkpoint/resume and persistent-cache options for this run's
    /// technique sessions. Opens the `--cache-dir` store (once — call
    /// this once per process and share the result, not once per
    /// technique), wiring its telemetry through `telemetry`; a directory
    /// that cannot be opened degrades to no disk tier with a `Warn` log
    /// rather than failing the run.
    pub fn session_opts(&self, telemetry: &Collector) -> SessionOpts {
        let disk = match (&self.cache_dir, self.no_disk_cache) {
            (Some(dir), false) => match DiskCache::open_with(dir, telemetry.clone()) {
                Ok(cache) => Some(Arc::new(cache)),
                Err(e) => {
                    telemetry.log(
                        Level::Warn,
                        &format!("cannot open cache dir {dir}: {e}; running without a disk cache"),
                    );
                    None
                }
            },
            _ => None,
        };
        SessionOpts {
            checkpoint: self.checkpoint.as_ref().map(PathBuf::from),
            resume: self.resume,
            every: self.checkpoint_every,
            disk,
        }
    }

    /// Builds the run's telemetry collector from the parsed flags:
    /// a [`JsonlSink`] when `--trace-out` was given and a
    /// [`PrometheusSink`] when `--metrics-out` was given (either
    /// activates metrics), plus a [`StderrSink`] at `Warn` (or `Info`
    /// with `--verbose`) so warnings stay visible while progress chatter
    /// is opt-in. Exits with an error when the trace file cannot be
    /// created.
    pub fn telemetry(&self) -> Collector {
        let mut builder = Collector::builder();
        if let Some(path) = &self.trace_out {
            match JsonlSink::create(std::path::Path::new(path)) {
                Ok(sink) => builder = builder.sink(sink),
                Err(e) => {
                    eprintln!("cannot create trace file {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &self.metrics_out {
            builder = builder.sink(PrometheusSink::new(std::path::Path::new(path)));
        }
        let level = if self.verbose {
            Level::Info
        } else {
            Level::Warn
        };
        let collector = builder.sink(StderrSink::new(level)).build();
        for warning in &self.warnings {
            collector.log(Level::Warn, warning);
        }
        collector
    }

    /// The models this run targets: `--models` if given, else `fallback`.
    /// Unknown names are skipped with a `Warn` log.
    pub fn models_or(&self, telemetry: &Collector, fallback: Vec<DnnModel>) -> Vec<DnnModel> {
        if self.models.is_empty() {
            return fallback;
        }
        self.models
            .iter()
            .filter_map(|name| {
                let m = zoo::by_name(name);
                if m.is_none() {
                    telemetry.log(Level::Warn, &format!("unknown model {name}, skipping"));
                }
                m
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_apply_the_quick_preset() {
        let a = BenchArgs::parse_from(&[] as &[&str], 2500);
        assert!(a.quick);
        assert_eq!(a.iters, 250);
        assert_eq!(a.map_trials, 300);
        assert_eq!(a.seed, 1);
        assert!(a.checkpoint.is_none() && !a.resume);
        assert_eq!(a.checkpoint_every, 10);
        assert!(a.warnings.is_empty());
    }

    #[test]
    fn quick_floor_keeps_tiny_experiments_meaningful() {
        assert_eq!(BenchArgs::parse_from(&[] as &[&str], 80).iters, 30);
    }

    #[test]
    fn full_restores_paper_scale_budgets() {
        let a = BenchArgs::parse_from(&["--full"], 2500);
        assert!(!a.quick);
        assert_eq!(a.iters, 2500);
        assert_eq!(a.map_trials, 10_000);
    }

    #[test]
    fn explicit_values_override_the_preset() {
        let a = BenchArgs::parse_from(&["--iters", "42", "--trials", "7", "--seed", "9"], 2500);
        assert_eq!((a.iters, a.map_trials, a.seed), (42, 7, 9));
        // Order should not matter: preset flags after the explicit value
        // must not clobber it.
        let a = BenchArgs::parse_from(&["--iters", "42", "--quick"], 2500);
        assert_eq!(a.iters, 42);
    }

    #[test]
    fn models_split_on_commas_and_trim() {
        let a = BenchArgs::parse_from(&["--models", "resnet18, mobilenet_v2"], 100);
        assert_eq!(a.models, vec!["resnet18", "mobilenet_v2"]);
    }

    #[test]
    fn checkpoint_flags_feed_session_opts() {
        let a = BenchArgs::parse_from(
            &[
                "--checkpoint",
                "/tmp/run.ckpt",
                "--resume",
                "--checkpoint-every",
                "3",
                "--out",
                "result.json",
            ],
            100,
        );
        assert_eq!(a.checkpoint.as_deref(), Some("/tmp/run.ckpt"));
        assert!(a.resume);
        assert_eq!(a.checkpoint_every, 3);
        assert_eq!(a.out.as_deref(), Some("result.json"));

        let opts = a.session_opts(&Collector::noop());
        assert_eq!(
            opts.path_for("explainable-fixdf"),
            Some(PathBuf::from("/tmp/run.ckpt.explainable-fixdf"))
        );
        assert!(opts.resume);
        assert_eq!(opts.every, 3);
        assert!(opts.disk.is_none(), "no --cache-dir, no disk tier");
        assert_eq!(SessionOpts::none().path_for("x"), None);
    }

    #[test]
    fn cache_dir_opens_a_shared_disk_tier() {
        let dir = std::env::temp_dir().join(format!("edse-cli-cache-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap().to_string();
        let a = BenchArgs::parse_from(&["--cache-dir", &dir_s], 100);
        assert_eq!(a.cache_dir.as_deref(), Some(dir_s.as_str()));
        assert!(a.warnings.is_empty(), "{:?}", a.warnings);
        let opts = a.session_opts(&Collector::noop());
        assert!(opts.disk.is_some());

        // --no-disk-cache wins over --cache-dir without warning (wrapper
        // scripts pass the directory unconditionally).
        let a = BenchArgs::parse_from(&["--cache-dir", &dir_s, "--no-disk-cache"], 100);
        assert!(a.warnings.is_empty(), "{:?}", a.warnings);
        assert!(a.session_opts(&Collector::noop()).disk.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_disk_cache_without_cache_dir_warns() {
        let a = BenchArgs::parse_from(&["--no-disk-cache"], 100);
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--no-disk-cache has no effect without --cache-dir"),
            "{:?}",
            a.warnings
        );
    }

    #[test]
    fn unopenable_cache_dir_degrades_to_no_disk_tier() {
        // A file (not a directory) at the path makes open fail.
        let path = std::env::temp_dir().join(format!("edse-cli-notadir-{}", std::process::id()));
        std::fs::write(&path, b"occupied").unwrap();
        let a = BenchArgs::parse_from(&["--cache-dir", path.to_str().unwrap()], 100);
        let opts = a.session_opts(&Collector::noop());
        assert!(opts.disk.is_none(), "open failure must degrade, not panic");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_flags_are_collected_not_fatal() {
        let a = BenchArgs::parse_from(&["--bogus", "--iters", "10"], 100);
        assert_eq!(a.iters, 10);
        assert_eq!(a.warnings.len(), 1);
        assert!(a.warnings[0].contains("--bogus"));
    }

    #[test]
    fn missing_value_falls_back_to_defaults_with_a_warning() {
        let a = BenchArgs::parse_from(&["--seed"], 100);
        assert_eq!(a.seed, 1);
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--seed needs a value"),
            "{:?}",
            a.warnings
        );

        let a = BenchArgs::parse_from(&["--checkpoint-every"], 100);
        assert_eq!(a.checkpoint_every, 10);
        assert!(a.warnings[0].contains("--checkpoint-every needs a value"));

        for flag in [
            "--iters",
            "--trials",
            "--models",
            "--trace-out",
            "--metrics-out",
            "--checkpoint",
            "--out",
            "--json",
            "--cache-dir",
        ] {
            let a = BenchArgs::parse_from(&[flag], 100);
            assert!(
                a.warnings.iter().any(|w| w.contains("needs a value")),
                "{flag} with no value must warn, got {:?}",
                a.warnings
            );
        }
    }

    #[test]
    fn json_flag_parses_like_the_other_output_flags() {
        let a = BenchArgs::parse_from(&["--json", "report.json"], 100);
        assert_eq!(a.json.as_deref(), Some("report.json"));
        assert!(a.warnings.is_empty());
        assert!(BenchArgs::parse_from(&[] as &[&str], 100).json.is_none());
    }

    #[test]
    fn metrics_out_flag_parses_and_activates_metrics() {
        let a = BenchArgs::parse_from(&["--metrics-out", "run.prom"], 100);
        assert_eq!(a.metrics_out.as_deref(), Some("run.prom"));
        assert!(a.warnings.is_empty());
        assert!(BenchArgs::parse_from(&[] as &[&str], 100)
            .metrics_out
            .is_none());

        // --metrics-out alone (no --trace-out) must switch metric
        // collection on: the Prometheus snapshot is the point.
        let dir = std::env::temp_dir().join(format!("edse-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.prom");
        let a = BenchArgs::parse_from(&["--metrics-out", path.to_str().unwrap()], 100);
        let t = a.telemetry();
        assert!(t.active());
        t.counter("probe", 1);
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("edse_probe 1"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_checkpoint_warns() {
        let a = BenchArgs::parse_from(&["--resume"], 100);
        assert!(a.resume && a.checkpoint.is_none());
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--resume has no effect without --checkpoint"),
            "{:?}",
            a.warnings
        );
        // With a checkpoint the combination is legitimate.
        let a = BenchArgs::parse_from(&["--resume", "--checkpoint", "x.ckpt"], 100);
        assert!(a.warnings.is_empty(), "{:?}", a.warnings);
    }

    #[test]
    fn json_colliding_with_out_or_trace_out_warns() {
        let a = BenchArgs::parse_from(&["--json", "same.json", "--out", "same.json"], 100);
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--json and --out"),
            "{:?}",
            a.warnings
        );

        let a = BenchArgs::parse_from(&["--json", "t.jsonl", "--trace-out", "t.jsonl"], 100);
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--json and --trace-out"),
            "{:?}",
            a.warnings
        );

        // Distinct paths coexist silently.
        let a = BenchArgs::parse_from(
            &[
                "--json",
                "r.json",
                "--out",
                "o.json",
                "--trace-out",
                "t.jsonl",
            ],
            100,
        );
        assert!(a.warnings.is_empty(), "{:?}", a.warnings);
        assert_eq!(a.json.as_deref(), Some("r.json"));
        assert_eq!(a.out.as_deref(), Some("o.json"));
        assert_eq!(a.trace_out.as_deref(), Some("t.jsonl"));
    }
}
