//! Command-line handling shared by every figure/table binary.
//!
//! Historically each binary re-parsed its own flags; the logic now lives
//! here once, as [`BenchArgs::parse_from`] over a plain argument slice so
//! the parser is unit-testable without touching the process environment.
//! This is also where the checkpoint/resume flags (`--checkpoint`,
//! `--resume`, `--checkpoint-every`) are hosted, feeding
//! [`SessionOpts`] into the technique runners.

use edse_core::{DiskCache, JobSpec};
use edse_telemetry::{Collector, JsonlSink, Level, PrometheusSink, StderrSink};
use std::path::PathBuf;
use std::sync::Arc;
use workloads::{zoo, DnnModel};

/// Common experiment options parsed from the command line.
///
/// The job-shaped options — budget (`--iters`), mapping trials, seed,
/// models, checkpoint/resume policy, and cache directory — live in the
/// embedded [`JobSpec`] (the same struct the `edse-serve` `POST /jobs`
/// body deserializes into); the remaining fields are harness concerns
/// (output destinations, verbosity, presets).
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// The consolidated job description: evaluation budget, mapping
    /// trials, seed, model names, checkpoint/resume policy, and cache
    /// directory.
    pub spec: JobSpec,
    /// Whether the `--quick` preset was chosen.
    pub quick: bool,
    /// JSONL trace destination (`--trace-out <path>`); `None` keeps
    /// telemetry metrics off entirely.
    pub trace_out: Option<String>,
    /// Prometheus text-format metrics snapshot destination
    /// (`--metrics-out <path>`), rewritten at every collector flush —
    /// the scrape surface for dashboards. Activates metric collection
    /// like `--trace-out` does.
    pub metrics_out: Option<String>,
    /// Whether `--verbose` lowers the stderr log threshold to `Info`
    /// (progress chatter); the default shows only warnings and errors.
    pub verbose: bool,
    /// Machine-readable result destination (`--out <path>`), used by the
    /// binaries that support it (e.g. `fig04_toy_trace`).
    pub out: Option<String>,
    /// Structured [`crate::report::BenchReport`] destination
    /// (`--json <path>`); every figure/table binary supports it.
    pub json: Option<String>,
    /// Whether `--no-disk-cache` opts this run out of `--cache-dir`
    /// (useful when a wrapper script passes the directory
    /// unconditionally).
    pub no_disk_cache: bool,
    /// Diagnostics accumulated while parsing (unknown flags, missing
    /// values, conflicting paths); surfaced as `Warn` logs once
    /// [`BenchArgs::telemetry`] builds the collector.
    pub warnings: Vec<String>,
}

/// Checkpoint/resume and persistent-cache options carried from the CLI
/// into a technique run.
#[derive(Debug, Clone, Default)]
pub struct SessionOpts {
    /// Checkpoint file base path; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Whether to resume from an existing snapshot.
    pub resume: bool,
    /// Snapshot cadence (clamped to at least 1 at use sites).
    pub every: usize,
    /// The open persistent evaluation cache (`--cache-dir`), shared by
    /// every evaluator the run builds; `None` keeps evaluation purely
    /// in-memory.
    pub disk: Option<Arc<DiskCache>>,
    /// Why the disk tier is off although `--cache-dir` was requested
    /// (the directory could not be opened). Carried into every
    /// evaluator's [`edse_core::CacheStats::disk_error`] so the
    /// degradation stays visible beyond the startup warning.
    pub disk_error: Option<String>,
}

impl SessionOpts {
    /// The disabled options: no checkpointing, no resume.
    pub fn none() -> Self {
        SessionOpts::default()
    }

    /// The per-technique snapshot path: `<base>.<label>`, so several
    /// techniques sharing one `--checkpoint` base in a single binary
    /// don't clobber each other's snapshots.
    pub fn path_for(&self, label: &str) -> Option<PathBuf> {
        self.checkpoint.as_ref().map(|base| {
            let mut os = base.clone().into_os_string();
            os.push(".");
            os.push(label);
            PathBuf::from(os)
        })
    }
}

impl BenchArgs {
    /// Parses `--iters N --trials N --seed N --models a,b --quick --full
    /// --trace-out PATH --verbose --checkpoint PATH --resume
    /// --checkpoint-every K --out PATH --json PATH --cache-dir PATH
    /// --no-disk-cache` from an argument slice (without the program
    /// name).
    ///
    /// `default_iters` applies to the full setting; `--quick` divides the
    /// budgets so every experiment finishes in minutes on a laptop. Quick
    /// is the default; pass `--full` for paper-scale budgets.
    ///
    /// Parsing never fails: unknown flags, value-taking flags missing
    /// their value, `--resume` without `--checkpoint`, and `--json`
    /// colliding with `--out`/`--trace-out` all land in
    /// [`BenchArgs::warnings`] (logged at `Warn` by
    /// [`BenchArgs::telemetry`]) while the run proceeds on defaults.
    pub fn parse_from<S: AsRef<str>>(argv: &[S], default_iters: usize) -> Self {
        let mut args = Self {
            spec: JobSpec {
                budget: default_iters,
                map_trials: 10_000,
                seed: 1,
                ..JobSpec::default()
            },
            quick: true,
            trace_out: None,
            metrics_out: None,
            verbose: false,
            out: None,
            json: None,
            no_disk_cache: false,
            warnings: Vec::new(),
        };
        // Reads the value of the flag at `argv[i]`; warns when the
        // argument list ends before the value.
        fn take<S: AsRef<str>>(argv: &[S], i: usize, warnings: &mut Vec<String>) -> Option<String> {
            let v = argv.get(i + 1).map(|v| v.as_ref().to_string());
            if v.is_none() {
                warnings.push(format!(
                    "flag {} needs a value, using the default",
                    argv[i].as_ref()
                ));
            }
            v
        }
        let mut explicit_iters = None;
        let mut explicit_trials = None;
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_ref() {
                "--iters" => {
                    explicit_iters = take(argv, i, &mut args.warnings).and_then(|v| v.parse().ok());
                    i += 1;
                }
                "--trials" => {
                    explicit_trials =
                        take(argv, i, &mut args.warnings).and_then(|v| v.parse().ok());
                    i += 1;
                }
                "--seed" => {
                    args.spec.seed = take(argv, i, &mut args.warnings)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(1);
                    i += 1;
                }
                "--models" => {
                    args.spec.models = take(argv, i, &mut args.warnings)
                        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
                        .unwrap_or_default();
                    i += 1;
                }
                "--trace-out" => {
                    args.trace_out = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--metrics-out" => {
                    args.metrics_out = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--checkpoint" => {
                    args.spec.checkpoint = take(argv, i, &mut args.warnings).map(PathBuf::from);
                    i += 1;
                }
                "--checkpoint-every" => {
                    args.spec.checkpoint_every = take(argv, i, &mut args.warnings)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(10);
                    i += 1;
                }
                "--out" => {
                    args.out = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--json" => {
                    args.json = take(argv, i, &mut args.warnings);
                    i += 1;
                }
                "--cache-dir" => {
                    args.spec.cache_dir = take(argv, i, &mut args.warnings).map(PathBuf::from);
                    i += 1;
                }
                "--no-disk-cache" => args.no_disk_cache = true,
                "--resume" => args.spec.resume = true,
                "--verbose" => args.verbose = true,
                "--full" => args.quick = false,
                "--quick" => args.quick = true,
                other => args
                    .warnings
                    .push(format!("ignoring unknown argument {other}")),
            }
            i += 1;
        }
        if args.quick {
            args.spec.budget = default_iters.div_ceil(10).max(30);
            args.spec.map_trials = 300;
        }
        if let Some(v) = explicit_iters {
            args.spec.budget = v;
        }
        if let Some(v) = explicit_trials {
            args.spec.map_trials = v;
        }
        if args.spec.resume && args.spec.checkpoint.is_none() {
            args.warnings
                .push("--resume has no effect without --checkpoint".into());
        }
        if args.no_disk_cache && args.spec.cache_dir.is_none() {
            args.warnings
                .push("--no-disk-cache has no effect without --cache-dir".into());
        }
        for (flag, other) in [("--out", &args.out), ("--trace-out", &args.trace_out)] {
            if args.json.is_some() && args.json == *other {
                args.warnings.push(format!(
                    "--json and {flag} point at the same file; the later writer clobbers it"
                ));
            }
        }
        args
    }

    /// Parses from the process arguments (see [`BenchArgs::parse_from`]).
    pub fn parse(default_iters: usize) -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_from(&argv, default_iters)
    }

    /// The checkpoint/resume and persistent-cache options for this run's
    /// technique sessions. Opens the `--cache-dir` store (once — call
    /// this once per process and share the result, not once per
    /// technique), wiring its telemetry through `telemetry`; a directory
    /// that cannot be opened degrades to no disk tier with a `Warn` log
    /// rather than failing the run.
    pub fn session_opts(&self, telemetry: &Collector) -> SessionOpts {
        let (disk, disk_error) = match (&self.spec.cache_dir, self.no_disk_cache) {
            (Some(dir), false) => match DiskCache::open_with(dir, telemetry.clone()) {
                Ok(cache) => (Some(Arc::new(cache)), None),
                Err(e) => {
                    let msg = format!(
                        "cannot open cache dir {}: {e}; running without a disk cache",
                        dir.display()
                    );
                    telemetry.log(Level::Warn, &msg);
                    (None, Some(msg))
                }
            },
            _ => (None, None),
        };
        SessionOpts {
            checkpoint: self.spec.checkpoint.clone(),
            resume: self.spec.resume,
            every: self.spec.checkpoint_every,
            disk,
            disk_error,
        }
    }

    /// Builds the run's telemetry collector from the parsed flags:
    /// a [`JsonlSink`] when `--trace-out` was given and a
    /// [`PrometheusSink`] when `--metrics-out` was given (either
    /// activates metrics), plus a [`StderrSink`] at `Warn` (or `Info`
    /// with `--verbose`) so warnings stay visible while progress chatter
    /// is opt-in. Exits with an error when the trace file cannot be
    /// created.
    pub fn telemetry(&self) -> Collector {
        let mut builder = Collector::builder();
        if let Some(path) = &self.trace_out {
            match JsonlSink::create(std::path::Path::new(path)) {
                Ok(sink) => builder = builder.sink(sink),
                Err(e) => {
                    eprintln!("cannot create trace file {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(path) = &self.metrics_out {
            builder = builder.sink(PrometheusSink::new(std::path::Path::new(path)));
        }
        let level = if self.verbose {
            Level::Info
        } else {
            Level::Warn
        };
        let collector = builder.sink(StderrSink::new(level)).build();
        for warning in &self.warnings {
            collector.log(Level::Warn, warning);
        }
        collector
    }

    /// The models this run targets: `--models` if given, else `fallback`.
    /// Unknown names are skipped with a `Warn` log.
    pub fn models_or(&self, telemetry: &Collector, fallback: Vec<DnnModel>) -> Vec<DnnModel> {
        if self.spec.models.is_empty() {
            return fallback;
        }
        self.spec
            .models
            .iter()
            .filter_map(|name| {
                let m = zoo::by_name(name);
                if m.is_none() {
                    telemetry.log(Level::Warn, &format!("unknown model {name}, skipping"));
                }
                m
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn defaults_apply_the_quick_preset() {
        let a = BenchArgs::parse_from(&[] as &[&str], 2500);
        assert!(a.quick);
        assert_eq!(a.spec.budget, 250);
        assert_eq!(a.spec.map_trials, 300);
        assert_eq!(a.spec.seed, 1);
        assert!(a.spec.checkpoint.is_none() && !a.spec.resume);
        assert_eq!(a.spec.checkpoint_every, 10);
        assert!(a.warnings.is_empty());
    }

    #[test]
    fn quick_floor_keeps_tiny_experiments_meaningful() {
        assert_eq!(BenchArgs::parse_from(&[] as &[&str], 80).spec.budget, 30);
    }

    #[test]
    fn full_restores_paper_scale_budgets() {
        let a = BenchArgs::parse_from(&["--full"], 2500);
        assert!(!a.quick);
        assert_eq!(a.spec.budget, 2500);
        assert_eq!(a.spec.map_trials, 10_000);
    }

    #[test]
    fn explicit_values_override_the_preset() {
        let a = BenchArgs::parse_from(&["--iters", "42", "--trials", "7", "--seed", "9"], 2500);
        assert_eq!((a.spec.budget, a.spec.map_trials, a.spec.seed), (42, 7, 9));
        // Order should not matter: preset flags after the explicit value
        // must not clobber it.
        let a = BenchArgs::parse_from(&["--iters", "42", "--quick"], 2500);
        assert_eq!(a.spec.budget, 42);
    }

    #[test]
    fn models_split_on_commas_and_trim() {
        let a = BenchArgs::parse_from(&["--models", "resnet18, mobilenet_v2"], 100);
        assert_eq!(a.spec.models, vec!["resnet18", "mobilenet_v2"]);
    }

    #[test]
    fn checkpoint_flags_feed_session_opts() {
        let a = BenchArgs::parse_from(
            &[
                "--checkpoint",
                "/tmp/run.ckpt",
                "--resume",
                "--checkpoint-every",
                "3",
                "--out",
                "result.json",
            ],
            100,
        );
        assert_eq!(
            a.spec.checkpoint.as_deref(),
            Some(Path::new("/tmp/run.ckpt"))
        );
        assert!(a.spec.resume);
        assert_eq!(a.spec.checkpoint_every, 3);
        assert_eq!(a.out.as_deref(), Some("result.json"));

        let opts = a.session_opts(&Collector::noop());
        assert_eq!(
            opts.path_for("explainable-fixdf"),
            Some(PathBuf::from("/tmp/run.ckpt.explainable-fixdf"))
        );
        assert!(opts.resume);
        assert_eq!(opts.every, 3);
        assert!(opts.disk.is_none(), "no --cache-dir, no disk tier");
        assert_eq!(SessionOpts::none().path_for("x"), None);
    }

    #[test]
    fn cache_dir_opens_a_shared_disk_tier() {
        let dir = std::env::temp_dir().join(format!("edse-cli-cache-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap().to_string();
        let a = BenchArgs::parse_from(&["--cache-dir", &dir_s], 100);
        assert_eq!(a.spec.cache_dir.as_deref(), Some(Path::new(&dir_s)));
        assert!(a.warnings.is_empty(), "{:?}", a.warnings);
        let opts = a.session_opts(&Collector::noop());
        assert!(opts.disk.is_some());

        // --no-disk-cache wins over --cache-dir without warning (wrapper
        // scripts pass the directory unconditionally).
        let a = BenchArgs::parse_from(&["--cache-dir", &dir_s, "--no-disk-cache"], 100);
        assert!(a.warnings.is_empty(), "{:?}", a.warnings);
        assert!(a.session_opts(&Collector::noop()).disk.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_disk_cache_without_cache_dir_warns() {
        let a = BenchArgs::parse_from(&["--no-disk-cache"], 100);
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--no-disk-cache has no effect without --cache-dir"),
            "{:?}",
            a.warnings
        );
    }

    #[test]
    fn unopenable_cache_dir_degrades_to_no_disk_tier() {
        // A file (not a directory) at the path makes open fail.
        let path = std::env::temp_dir().join(format!("edse-cli-notadir-{}", std::process::id()));
        std::fs::write(&path, b"occupied").unwrap();
        let a = BenchArgs::parse_from(&["--cache-dir", path.to_str().unwrap()], 100);
        let opts = a.session_opts(&Collector::noop());
        assert!(opts.disk.is_none(), "open failure must degrade, not panic");
        // The degradation is not silent: the reason rides along so every
        // evaluator built from these options reports it in cache_stats().
        let err = opts.disk_error.as_deref().expect("disk_error recorded");
        assert!(err.contains("cannot open cache dir"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_flags_are_collected_not_fatal() {
        let a = BenchArgs::parse_from(&["--bogus", "--iters", "10"], 100);
        assert_eq!(a.spec.budget, 10);
        assert_eq!(a.warnings.len(), 1);
        assert!(a.warnings[0].contains("--bogus"));
    }

    #[test]
    fn missing_value_falls_back_to_defaults_with_a_warning() {
        let a = BenchArgs::parse_from(&["--seed"], 100);
        assert_eq!(a.spec.seed, 1);
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--seed needs a value"),
            "{:?}",
            a.warnings
        );

        let a = BenchArgs::parse_from(&["--checkpoint-every"], 100);
        assert_eq!(a.spec.checkpoint_every, 10);
        assert!(a.warnings[0].contains("--checkpoint-every needs a value"));

        for flag in [
            "--iters",
            "--trials",
            "--models",
            "--trace-out",
            "--metrics-out",
            "--checkpoint",
            "--out",
            "--json",
            "--cache-dir",
        ] {
            let a = BenchArgs::parse_from(&[flag], 100);
            assert!(
                a.warnings.iter().any(|w| w.contains("needs a value")),
                "{flag} with no value must warn, got {:?}",
                a.warnings
            );
        }
    }

    #[test]
    fn json_flag_parses_like_the_other_output_flags() {
        let a = BenchArgs::parse_from(&["--json", "report.json"], 100);
        assert_eq!(a.json.as_deref(), Some("report.json"));
        assert!(a.warnings.is_empty());
        assert!(BenchArgs::parse_from(&[] as &[&str], 100).json.is_none());
    }

    #[test]
    fn metrics_out_flag_parses_and_activates_metrics() {
        let a = BenchArgs::parse_from(&["--metrics-out", "run.prom"], 100);
        assert_eq!(a.metrics_out.as_deref(), Some("run.prom"));
        assert!(a.warnings.is_empty());
        assert!(BenchArgs::parse_from(&[] as &[&str], 100)
            .metrics_out
            .is_none());

        // --metrics-out alone (no --trace-out) must switch metric
        // collection on: the Prometheus snapshot is the point.
        let dir = std::env::temp_dir().join(format!("edse-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.prom");
        let a = BenchArgs::parse_from(&["--metrics-out", path.to_str().unwrap()], 100);
        let t = a.telemetry();
        assert!(t.active());
        t.counter("probe", 1);
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("edse_probe 1"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_without_checkpoint_warns() {
        let a = BenchArgs::parse_from(&["--resume"], 100);
        assert!(a.spec.resume && a.spec.checkpoint.is_none());
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--resume has no effect without --checkpoint"),
            "{:?}",
            a.warnings
        );
        // With a checkpoint the combination is legitimate.
        let a = BenchArgs::parse_from(&["--resume", "--checkpoint", "x.ckpt"], 100);
        assert!(a.warnings.is_empty(), "{:?}", a.warnings);
    }

    #[test]
    fn json_colliding_with_out_or_trace_out_warns() {
        let a = BenchArgs::parse_from(&["--json", "same.json", "--out", "same.json"], 100);
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--json and --out"),
            "{:?}",
            a.warnings
        );

        let a = BenchArgs::parse_from(&["--json", "t.jsonl", "--trace-out", "t.jsonl"], 100);
        assert_eq!(a.warnings.len(), 1);
        assert!(
            a.warnings[0].contains("--json and --trace-out"),
            "{:?}",
            a.warnings
        );

        // Distinct paths coexist silently.
        let a = BenchArgs::parse_from(
            &[
                "--json",
                "r.json",
                "--out",
                "o.json",
                "--trace-out",
                "t.jsonl",
            ],
            100,
        );
        assert!(a.warnings.is_empty(), "{:?}", a.warnings);
        assert_eq!(a.json.as_deref(), Some("r.json"));
        assert_eq!(a.out.as_deref(), Some("o.json"));
        assert_eq!(a.trace_out.as_deref(), Some("t.jsonl"));
    }
}
