//! Fig. 4 — Toy two-parameter exploration (#PEs x shared-memory size) for a
//! late ResNet convolution (CONV5_2-class layer), tracing the acquisitions
//! of a HyperMapper-2.0-style optimizer against Explainable-DSE. All other
//! parameters are frozen mid-range, exactly the setting of the paper's
//! illustration.
//!
//! Usage: `fig04_toy_trace [--iters N] [--seed N] [--out PATH]
//! [--json PATH] [--checkpoint PATH [--checkpoint-every K] [--resume]]`
//!
//! `--out` writes a machine-readable result summary (sample objectives,
//! best feasible latency, attempt count — deliberately no wall-clock
//! times) so interrupted-and-resumed runs can be diffed against
//! uninterrupted ones; `scripts/check.sh` does exactly that.

use baselines::{BaselineSession, HyperMapperLike};
use bench::toy::{single_layer_model, toy_space};
use bench::{BenchArgs, BenchReport};
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::{edge, DesignSpace};
use edse_core::JobSpec;
use edse_core::{bottleneck::dnn_latency_model, DseResult, SearchSession, Trace};
use edse_telemetry::json::Json;

fn print_trace(title: &str, space: &DesignSpace, trace: &Trace) {
    println!("\n--- {title} ---");
    println!(
        "{:>4} {:>6} {:>8} {:>12} {:>5}",
        "iter", "PEs", "L2 (kB)", "latency (ms)", "ok"
    );
    for (i, s) in trace.samples.iter().enumerate() {
        println!(
            "{:>4} {:>6} {:>8} {:>12} {:>5}",
            i + 1,
            space.value(&s.point, edge::PES),
            space.value(&s.point, edge::L2_KB),
            if s.objective.is_finite() {
                format!("{:.3}", s.objective)
            } else {
                "inf".into()
            },
            if s.feasible { "yes" } else { "no" }
        );
    }
    match trace.best_feasible() {
        Some(b) => println!("best feasible: {:.3} ms", b.objective),
        None => println!("no feasible point found"),
    }
}

/// The deterministic portion of one trace: everything a resumed run must
/// reproduce bit-for-bit. Wall-clock times are deliberately excluded.
fn trace_json(trace: &Trace) -> Json {
    Json::obj(vec![
        ("technique", Json::Str(trace.technique.clone())),
        ("evaluations", Json::Num(trace.evaluations() as f64)),
        (
            "samples",
            Json::Arr(
                trace
                    .samples
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            (
                                "point",
                                Json::Arr(
                                    s.point
                                        .indices()
                                        .iter()
                                        .map(|&i| Json::Num(i as f64))
                                        .collect(),
                                ),
                            ),
                            ("objective", Json::Num(s.objective)),
                            ("feasible", Json::Bool(s.feasible)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "best",
            trace
                .best_feasible()
                .map(|b| Json::Num(b.objective))
                .unwrap_or(Json::Null),
        ),
    ])
}

/// The full deterministic result summary written by `--out`.
fn result_json(hm: &Trace, result: &DseResult, unique_evaluations: usize) -> Json {
    Json::obj(vec![
        ("hypermapper", trace_json(hm)),
        ("explainable", trace_json(result.trace())),
        ("attempts", Json::Num(result.attempts().len() as f64)),
        (
            "converged_after",
            Json::Arr(
                result
                    .converged_after()
                    .iter()
                    .map(|&n| Json::Num(n as f64))
                    .collect(),
            ),
        ),
        ("termination", Json::Str(result.termination().to_string())),
        ("unique_evaluations", Json::Num(unique_evaluations as f64)),
    ])
}

fn main() {
    let args = BenchArgs::parse(25);
    let telemetry = args.telemetry();
    let opts = args.session_opts(&telemetry);
    let space = toy_space();
    let model = single_layer_model();

    // HyperMapper-2.0-style exploration (Fig. 4a).
    let mut ev = CodesignEvaluator::new(space.clone(), vec![model.clone()], mapper::FixedMapper)
        .with_telemetry(telemetry.clone());
    if let Some(disk) = &opts.disk {
        ev = ev.with_disk_cache(disk.clone());
    }
    let mut technique = HyperMapperLike::new(args.spec.seed);
    let mut hm_session = BaselineSession::new(&mut technique).telemetry(telemetry.clone());
    if let Some(path) = opts.path_for("hypermapper") {
        hm_session = hm_session.spec(&JobSpec {
            checkpoint: Some(path),
            checkpoint_every: opts.every,
            resume: opts.resume,
            ..JobSpec::default()
        });
    }
    let hm = hm_session.run(&ev, args.spec.budget);
    telemetry.flush();
    print_trace("HyperMapper 2.0 (black-box)", &space, &hm);

    // Explainable-DSE (Fig. 4b).
    let mut ev = CodesignEvaluator::new(space.clone(), vec![model], mapper::FixedMapper)
        .with_telemetry(telemetry.clone());
    if let Some(disk) = &opts.disk {
        ev = ev.with_disk_cache(disk.clone());
    }
    let mut session = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget: args.spec.budget,
            ..DseConfig::default()
        },
    )
    .evaluator(&ev)
    .telemetry(telemetry.clone());
    if let Some(path) = opts.path_for("explainable") {
        session = session.spec(&JobSpec {
            checkpoint: Some(path),
            checkpoint_every: opts.every,
            resume: opts.resume,
            ..JobSpec::default()
        });
    }
    let initial = ev.space().minimum_point();
    let result = session.run(initial);
    telemetry.flush();
    print_trace(
        "Explainable-DSE (bottleneck-guided)",
        &space,
        result.trace(),
    );
    println!("\nexplanations:");
    for a in result.attempts().iter().take(6) {
        println!("  attempt {}: {}", a.index(), a.decision());
        if let Some(line) = a.analyses().first() {
            let short: String = line.chars().take(120).collect();
            println!("    {short}");
        }
    }

    if let Some(out) = &args.out {
        let unique = ev.cache_snapshot().unique_evaluations;
        let line = result_json(&hm, &result, unique).to_line();
        if let Err(e) = std::fs::write(out, line + "\n") {
            eprintln!("cannot write result file {out}: {e}");
            std::process::exit(1);
        }
        println!("\nresult summary written to {out}");
    }

    let mut report = BenchReport::new("fig04_toy_trace", &args);
    report.push_trace("hypermapper-toy", &hm);
    report.push_trace("explainable-toy", result.trace());
    report.metric("attempts", Json::Num(result.attempts().len() as f64));
    report.metric(
        "converged_after",
        Json::Arr(
            result
                .converged_after()
                .iter()
                .map(|&n| Json::Num(n as f64))
                .collect(),
        ),
    );
    report.metric("termination", Json::Str(result.termination().to_string()));
    report.write_if_requested(&args);
}
