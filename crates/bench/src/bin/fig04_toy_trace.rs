//! Fig. 4 — Toy two-parameter exploration (#PEs x shared-memory size) for a
//! late ResNet convolution (CONV5_2-class layer), tracing the acquisitions
//! of a HyperMapper-2.0-style optimizer against Explainable-DSE. All other
//! parameters are frozen mid-range, exactly the setting of the paper's
//! illustration.
//!
//! Usage: `fig04_toy_trace [--iters N] [--seed N]`

use baselines::{DseTechnique, HyperMapperLike};
use bench::Args;
use edse_core::bottleneck::dnn_latency_model;
use edse_core::dse::{DseConfig, ExplainableDse};
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::{edge, DesignSpace, ParamDef};
use edse_core::Trace;
use workloads::constraints::ThroughputTarget;
use workloads::model::{DnnModel, Layer};
use workloads::LayerShape;

/// The edge space with every parameter except #PEs and L2 frozen to a
/// workable mid value (single-option domains).
fn toy_space() -> DesignSpace {
    let full = edse_core::space::edge_space();
    let params = full
        .params()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            if i == edge::PES || i == edge::L2_KB {
                p.clone()
            } else {
                let values = p.values();
                let mid = values[values.len() - 1];
                ParamDef::new(p.name().to_string(), vec![mid])
            }
        })
        .collect();
    DesignSpace::new(params)
}

fn single_layer_model() -> DnnModel {
    DnnModel::new(
        "ResNet-CONV5_2",
        vec![Layer::new(
            "conv5_2b",
            LayerShape::conv(1, 512, 512, 7, 7, 3, 3, 1),
            1,
        )],
        ThroughputTarget::fps(40.0),
    )
}

fn print_trace(title: &str, space: &DesignSpace, trace: &Trace) {
    println!("\n--- {title} ---");
    println!(
        "{:>4} {:>6} {:>8} {:>12} {:>5}",
        "iter", "PEs", "L2 (kB)", "latency (ms)", "ok"
    );
    for (i, s) in trace.samples.iter().enumerate() {
        println!(
            "{:>4} {:>6} {:>8} {:>12} {:>5}",
            i + 1,
            space.value(&s.point, edge::PES),
            space.value(&s.point, edge::L2_KB),
            if s.objective.is_finite() {
                format!("{:.3}", s.objective)
            } else {
                "inf".into()
            },
            if s.feasible { "yes" } else { "no" }
        );
    }
    match trace.best_feasible() {
        Some(b) => println!("best feasible: {:.3} ms", b.objective),
        None => println!("no feasible point found"),
    }
}

fn main() {
    let args = Args::parse(25);
    let telemetry = args.telemetry();
    let space = toy_space();
    let model = single_layer_model();

    // HyperMapper-2.0-style exploration (Fig. 4a).
    let ev = CodesignEvaluator::new(space.clone(), vec![model.clone()], mapper::FixedMapper)
        .with_telemetry(telemetry.clone());
    let hm = HyperMapperLike::new(args.seed).run_traced(&ev, args.iters, &telemetry);
    telemetry.flush();
    print_trace("HyperMapper 2.0 (black-box)", &space, &hm);

    // Explainable-DSE (Fig. 4b).
    let ev = CodesignEvaluator::new(space.clone(), vec![model], mapper::FixedMapper)
        .with_telemetry(telemetry.clone());
    let dse = ExplainableDse::new(
        dnn_latency_model(),
        DseConfig {
            budget: args.iters,
            ..DseConfig::default()
        },
    )
    .with_telemetry(telemetry.clone());
    let initial = ev.space().minimum_point();
    let result = dse.run_dnn(&ev, initial);
    telemetry.flush();
    print_trace("Explainable-DSE (bottleneck-guided)", &space, &result.trace);
    println!("\nexplanations:");
    for a in result.attempts.iter().take(6) {
        println!("  attempt {}: {}", a.index, a.decision);
        if let Some(line) = a.analyses.first() {
            let short: String = line.chars().take(120).collect();
            println!("    {short}");
        }
    }
}
