//! Workload ingestion demo: import a model from its JSON description and
//! run a quick explainable exploration for it — the end-to-end path a
//! downstream user takes for a network that is not in the built-in zoo.
//!
//! Usage: `import_model <path/to/model.json> [--iters N] [--json PATH]`
//! (default path: `assets/custom_model.json`)

use bench::{BenchArgs, BenchReport};
use edse_core::bottleneck::dnn_latency_model;
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::edge_space;
use edse_core::SearchSession;
use edse_telemetry::json::Json;
use edse_telemetry::Level;
use mapper::LinearMapper;

fn main() {
    let path = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "assets/custom_model.json".into());
    let mut args = BenchArgs::parse(150);
    // The first positional argument is the model path, not an unknown flag.
    args.warnings
        .retain(|w| !w.ends_with(&format!("argument {path}")));
    let telemetry = args.telemetry();

    let json = match std::fs::read_to_string(&path) {
        Ok(j) => j,
        Err(e) => {
            telemetry.log(Level::Error, &format!("cannot read {path}: {e}"));
            std::process::exit(1);
        }
    };
    let model = match workloads::from_json_str(&json) {
        Ok(m) => m,
        Err(e) => {
            telemetry.log(Level::Error, &format!("import failed: {e}"));
            std::process::exit(1);
        }
    };

    let mut report = BenchReport::new("import_model", &args);
    report.metric(
        "model",
        Json::obj(vec![
            ("name", Json::Str(model.name().to_string())),
            ("layers", Json::Num(model.layer_count() as f64)),
            (
                "unique_shapes",
                Json::Num(model.unique_shape_count() as f64),
            ),
            ("total_macs", Json::Num(model.total_macs() as f64)),
            (
                "target_inferences_per_second",
                Json::Num(model.target().inferences_per_second()),
            ),
        ]),
    );
    println!(
        "imported {}: {} layers ({} unique shapes), {:.2} GMACs, floor {:.1} inf/s",
        model.name(),
        model.layer_count(),
        model.unique_shape_count(),
        model.total_macs() as f64 / 1e9,
        model.target().inferences_per_second()
    );
    for u in model.unique_shapes().iter().take(8) {
        println!("  {:>14} x{:<3} {}", u.name, u.count, u.shape.describe());
    }

    let mut evaluator = CodesignEvaluator::new(
        edge_space(),
        vec![model],
        LinearMapper::new(args.spec.map_trials),
    )
    .with_telemetry(telemetry.clone());
    if let Some(disk) = &args.session_opts(&telemetry).disk {
        evaluator = evaluator.with_disk_cache(disk.clone());
    }
    let mut session = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget: args.spec.budget,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator)
    .telemetry(telemetry.clone());
    session = session.spec(&args.spec);
    let initial = evaluator.space().minimum_point();
    let result = session.run(initial);
    telemetry.flush();
    report.push_trace("explainable-import", result.trace());
    report.metric("termination", Json::Str(result.termination().to_string()));
    println!(
        "\nexplored {} designs ({})",
        result.trace().evaluations(),
        result.termination()
    );
    match &result.best() {
        Some((point, eval)) => {
            let cfg = evaluator.decode(point);
            report.metric(
                "best_design",
                Json::obj(vec![
                    ("pes", Json::Num(cfg.pes as f64)),
                    ("l1_bytes", Json::Num(cfg.l1_bytes as f64)),
                    ("l2_bytes", Json::Num(cfg.l2_bytes as f64)),
                    ("offchip_bw_mbps", Json::Num(cfg.offchip_bw_mbps as f64)),
                    ("objective_ms", Json::Num(eval.objective)),
                    ("area_mm2", Json::Num(eval.area_mm2)),
                    ("power_w", Json::Num(eval.power_w)),
                ]),
            );
            println!(
                "best codesign: {} PEs, {} B RF, {} kB SPM, {} MB/s -> {:.3} ms, {:.1} mm^2, {:.2} W",
                cfg.pes,
                cfg.l1_bytes,
                cfg.l2_bytes / 1024,
                cfg.offchip_bw_mbps,
                eval.objective,
                eval.area_mm2,
                eval.power_w
            );
        }
        None => println!("no feasible design within the budget"),
    }
    report.write_if_requested(&args);
}
