//! Workload ingestion demo: import a model from its JSON description and
//! run a quick explainable exploration for it — the end-to-end path a
//! downstream user takes for a network that is not in the built-in zoo.
//!
//! Usage: `import_model <path/to/model.json> [--iters N]`
//! (default path: `assets/custom_model.json`)

use bench::BenchArgs;
use edse_core::bottleneck::dnn_latency_model;
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::edge_space;
use edse_core::SearchSession;
use edse_telemetry::Level;
use mapper::LinearMapper;

fn main() {
    let path = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "assets/custom_model.json".into());
    let mut args = BenchArgs::parse(150);
    // The first positional argument is the model path, not an unknown flag.
    args.warnings
        .retain(|w| !w.ends_with(&format!("argument {path}")));
    let telemetry = args.telemetry();

    let json = match std::fs::read_to_string(&path) {
        Ok(j) => j,
        Err(e) => {
            telemetry.log(Level::Error, &format!("cannot read {path}: {e}"));
            std::process::exit(1);
        }
    };
    let model = match workloads::from_json_str(&json) {
        Ok(m) => m,
        Err(e) => {
            telemetry.log(Level::Error, &format!("import failed: {e}"));
            std::process::exit(1);
        }
    };

    println!(
        "imported {}: {} layers ({} unique shapes), {:.2} GMACs, floor {:.1} inf/s",
        model.name(),
        model.layer_count(),
        model.unique_shape_count(),
        model.total_macs() as f64 / 1e9,
        model.target().inferences_per_second()
    );
    for u in model.unique_shapes().iter().take(8) {
        println!("  {:>14} x{:<3} {}", u.name, u.count, u.shape.describe());
    }

    let evaluator = CodesignEvaluator::new(
        edge_space(),
        vec![model],
        LinearMapper::new(args.map_trials),
    )
    .with_telemetry(telemetry.clone());
    let mut session = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget: args.iters,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator)
    .telemetry(telemetry.clone());
    if let Some(path) = &args.checkpoint {
        session = session
            .checkpoint(path)
            .checkpoint_every(args.checkpoint_every)
            .resume(args.resume);
    }
    let initial = evaluator.space().minimum_point();
    let result = session.run(initial);
    telemetry.flush();
    println!(
        "\nexplored {} designs ({})",
        result.trace.evaluations(),
        result.termination
    );
    match &result.best {
        Some((point, eval)) => {
            let cfg = evaluator.decode(point);
            println!(
                "best codesign: {} PEs, {} B RF, {} kB SPM, {} MB/s -> {:.3} ms, {:.1} mm^2, {:.2} W",
                cfg.pes,
                cfg.l1_bytes,
                cfg.l2_bytes / 1024,
                cfg.offchip_bw_mbps,
                eval.objective,
                eval.area_mm2,
                eval.power_w
            );
        }
        None => println!("no feasible design within the budget"),
    }
}
