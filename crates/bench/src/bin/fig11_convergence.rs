//! Fig. 11 — Latency reduced over iterations for (a) EfficientNet-B0 and
//! (b) Transformer: the running best-feasible objective per technique,
//! printed as aligned series.
//!
//! Usage: `fig11_convergence [--full] [--iters N] [--models a,b] [--json PATH]`

use bench::{print_table, run_technique, BenchArgs, BenchReport, MapperKind, TechniqueKind};
use edse_core::Trace;
use workloads::zoo;

fn fmt(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "-".into()
    }
}

fn main() {
    let args = BenchArgs::parse(2500);
    let telemetry = args.telemetry();
    let session = args.session_opts(&telemetry);
    let models = args.models_or(&telemetry, vec![zoo::efficientnet_b0(), zoo::transformer()]);

    let settings = [
        (TechniqueKind::Random, MapperKind::FixedDataflow),
        (TechniqueKind::HyperMapper, MapperKind::FixedDataflow),
        (TechniqueKind::Rl, MapperKind::FixedDataflow),
        (TechniqueKind::Explainable, MapperKind::FixedDataflow),
        (
            TechniqueKind::Random,
            MapperKind::Random(args.spec.map_trials),
        ),
        (
            TechniqueKind::Explainable,
            MapperKind::Linear(args.spec.map_trials),
        ),
    ];

    let mut report = BenchReport::new("fig11_convergence", &args);
    for model in &models {
        println!("== Fig. 11: convergence for {} ==\n", model.name());
        let traces: Vec<(String, Trace)> = settings
            .iter()
            .map(|(kind, mapper)| {
                let t = run_technique(
                    *kind,
                    *mapper,
                    vec![model.clone()],
                    args.spec.budget,
                    args.spec.seed,
                    &telemetry,
                    &session,
                );
                (format!("{}{}", kind.label(), mapper.suffix()), t)
            })
            .collect();
        for (label, t) in &traces {
            report.push_trace(&format!("{label}/{}", model.name()), t);
        }

        // Sample the running-best curves at ~12 points.
        let max_len = traces
            .iter()
            .map(|(_, t)| t.evaluations())
            .max()
            .unwrap_or(0);
        let step = (max_len / 12).max(1);
        let mut headers = vec!["iteration".to_string()];
        headers.extend(traces.iter().map(|(n, _)| n.clone()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

        let curves: Vec<Vec<f64>> = traces.iter().map(|(_, t)| t.convergence_curve()).collect();
        let mut rows = Vec::new();
        let mut i = step - 1;
        while i < max_len {
            let mut row = vec![(i + 1).to_string()];
            for c in &curves {
                row.push(fmt(*c
                    .get(i.min(c.len().saturating_sub(1)))
                    .unwrap_or(&f64::INFINITY)));
            }
            rows.push(row);
            i += step;
        }
        print_table(&header_refs, &rows);
        println!(
            "\nfinal best: {}\n",
            traces
                .iter()
                .map(|(n, t)| format!(
                    "{n}={}",
                    t.best_feasible()
                        .map(|s| format!("{:.2}", s.objective))
                        .unwrap_or("-".into())
                ))
                .collect::<Vec<_>>()
                .join("  ")
        );
    }
    println!(
        "paper shape: Explainable-DSE reduces the objective at almost every\n\
         acquisition and converges within tens of iterations; black-box curves\n\
         plateau far higher."
    );
    report.write_if_requested(&args);
}
