//! Ablations of Explainable-DSE's design choices (DESIGN.md §6):
//!
//! * **aggregation** — minimum vs maximum over conflicting per-layer
//!   predictions (§4.4 argues max exhausts the constraints budget early);
//! * **budget-awareness** — the §4.6 objective x budget update vs plain
//!   objective minimization;
//! * **top-K** — how many cost-critical sub-functions contribute
//!   predictions per attempt (paper: 5);
//! * **mapping coupling** — fixed dataflow vs tightly coupled codesign
//!   (§6.2's 4.24x claim).
//!
//! Usage: `ablation_dse [--iters N] [--models a,b] [--seed N] [--json PATH]`

use bench::{print_table, BenchArgs, BenchReport, SessionOpts};
use edse_core::bottleneck::dnn_latency_model;
use edse_core::cost::Trace;
use edse_core::dse::{Aggregation, DseConfig};
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::edge_space;
use edse_core::SearchSession;
use edse_telemetry::Collector;
use mapper::{FixedMapper, LinearMapper, MappingOptimizer};
use workloads::{zoo, DnnModel};

fn run<M: MappingOptimizer>(
    model: &DnnModel,
    mapper: M,
    config: DseConfig,
    telemetry: &Collector,
    session: &SessionOpts,
) -> (String, String, String, Trace) {
    let mut ev = CodesignEvaluator::new(edge_space(), vec![model.clone()], mapper)
        .with_telemetry(telemetry.clone());
    if let Some(disk) = &session.disk {
        ev = ev.with_disk_cache(disk.clone());
    }
    let session = SearchSession::new(dnn_latency_model(), config)
        .evaluator(&ev)
        .telemetry(telemetry.clone());
    let initial = ev.space().minimum_point();
    let r = session.run(initial);
    let best = r
        .best()
        .map(|(_, e)| format!("{:.2}", e.objective))
        .unwrap_or_else(|| "-".into());
    let budget = r
        .best()
        .map(|(_, e)| format!("{:.2}", e.constraint_budget(ev.constraints())))
        .unwrap_or_else(|| "-".into());
    let evaluations = r.trace().evaluations().to_string();
    (best, evaluations, budget, r.into_trace())
}

fn main() {
    let mut args = BenchArgs::parse(250);
    // Convergence comparisons need room even in quick mode.
    args.spec.budget = args.spec.budget.max(150);
    let telemetry = args.telemetry();
    let session = args.session_opts(&telemetry);
    let models = args.models_or(&telemetry, vec![zoo::resnet18(), zoo::efficientnet_b0()]);
    let base = DseConfig {
        budget: args.spec.budget,
        ..DseConfig::default()
    };

    let mut report = BenchReport::new("ablation_dse", &args);
    for model in &models {
        println!(
            "== ablations for {} (budget {}) ==",
            model.name(),
            args.spec.budget
        );
        let variants: Vec<(&str, DseConfig, bool)> = vec![
            (
                "paper defaults (min agg, budget-aware, K=5)",
                base.clone(),
                false,
            ),
            (
                "max aggregation",
                DseConfig {
                    aggregation: Aggregation::Max,
                    ..base.clone()
                },
                false,
            ),
            (
                "budget-awareness off",
                DseConfig {
                    budget_aware: false,
                    ..base.clone()
                },
                false,
            ),
            (
                "top-K = 1",
                DseConfig {
                    top_k: 1,
                    ..base.clone()
                },
                false,
            ),
            (
                "top-K = 20",
                DseConfig {
                    top_k: 20,
                    ..base.clone()
                },
                false,
            ),
            ("codesign (linear mapper)", base.clone(), true),
        ];
        let mut rows = Vec::new();
        for (name, config, codesign) in variants {
            let (best, evals, budget, trace) = if codesign {
                run(
                    model,
                    LinearMapper::new(args.spec.map_trials),
                    config,
                    &telemetry,
                    &session,
                )
            } else {
                run(model, FixedMapper, config, &telemetry, &session)
            };
            telemetry.flush();
            report.push_trace(&format!("{name}/{}", model.name()), &trace);
            rows.push(vec![name.to_string(), best, evals, budget]);
        }
        print_table(
            &["variant", "best latency (ms)", "evals", "budget used"],
            &rows,
        );
        println!();
    }
    println!(
        "paper shape: max aggregation converges faster but exhausts the budget on\n\
         over-provisioned designs; removing budget-awareness chases marginal\n\
         objective reductions; codesign reduces latency a further ~4.24x."
    );
    report.write_if_requested(&args);
}
