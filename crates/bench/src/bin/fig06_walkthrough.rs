//! Fig. 6 — The paper's walkthrough, end to end: exploring a ResNet-18
//! accelerator with every step narrated — (b) per-layer bottleneck
//! analysis, (c) aggregation across layers, (d) bottleneck-mitigating
//! acquisitions, (e) constraints-aware update — rendered as the markdown
//! report the framework produces for any run.
//!
//! Usage: `fig06_walkthrough [--iters N] [--json PATH]`

use bench::{BenchArgs, BenchReport};
use edse_core::bottleneck::dnn_latency_model;
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::edge_space;
use edse_core::SearchSession;
use edse_telemetry::json::Json;
use mapper::FixedMapper;
use workloads::zoo;

fn main() {
    let args = BenchArgs::parse(80);
    let telemetry = args.telemetry();
    let mut evaluator = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper)
        .with_telemetry(telemetry.clone());
    if let Some(disk) = &args.session_opts(&telemetry).disk {
        evaluator = evaluator.with_disk_cache(disk.clone());
    }
    let mut session = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget: args.spec.budget.max(60),
            restarts: 0,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator)
    .telemetry(telemetry.clone());
    session = session.spec(&args.spec);
    let initial = evaluator.space().minimum_point();
    let result = session.run(initial);
    telemetry.flush();
    println!(
        "{}",
        result.report(evaluator.space(), evaluator.constraints())
    );

    let mut report = BenchReport::new("fig06_walkthrough", &args);
    report.push_trace("explainable-walkthrough", result.trace());
    report.metric("attempts", Json::Num(result.attempts().len() as f64));
    report.metric("termination", Json::Str(result.termination().to_string()));
    report.write_if_requested(&args);
}
