//! Fig. 6 — The paper's walkthrough, end to end: exploring a ResNet-18
//! accelerator with every step narrated — (b) per-layer bottleneck
//! analysis, (c) aggregation across layers, (d) bottleneck-mitigating
//! acquisitions, (e) constraints-aware update — rendered as the markdown
//! report the framework produces for any run.
//!
//! Usage: `fig06_walkthrough [--iters N]`

use bench::Args;
use edse_core::bottleneck::dnn_latency_model;
use edse_core::dse::{DseConfig, ExplainableDse};
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::edge_space;
use mapper::FixedMapper;
use workloads::zoo;

fn main() {
    let args = Args::parse(80);
    let telemetry = args.telemetry();
    let evaluator = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper)
        .with_telemetry(telemetry.clone());
    let dse = ExplainableDse::new(
        dnn_latency_model(),
        DseConfig {
            budget: args.iters.max(60),
            restarts: 0,
            ..DseConfig::default()
        },
    )
    .with_telemetry(telemetry.clone());
    let initial = evaluator.space().minimum_point();
    let result = dse.run_dnn(&evaluator, initial);
    telemetry.flush();
    println!(
        "{}",
        result.report(evaluator.space(), evaluator.constraints())
    );
}
