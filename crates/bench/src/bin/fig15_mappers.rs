//! Fig. 15 — Quality of the mappings found by different black-box mapping
//! optimizers (random / simulated annealing / genetic) and the pruned-space
//! linear mapper, for the unique convolution layers of ResNet-18 on the
//! reference (smallest Table-1) hardware configuration, as in the paper's
//! §F study (footnote 6).
//!
//! Usage: `fig15_mappers [--full] [--trials N] [--seed N] [--json PATH]`

use accel_model::AcceleratorConfig;
use bench::{print_table, BenchArgs, BenchReport};
use edse_telemetry::json::Json;
use mapper::{
    AnnealingMapper, GeneticMapper, InstrumentedMapper, LinearMapper, MappingOptimizer,
    RandomMapper,
};
use workloads::zoo;

fn main() {
    let args = BenchArgs::parse(2500);
    let telemetry = args.telemetry();
    let trials = args.spec.map_trials;
    // Enough links and register-file bytes that mappings are limited by
    // tiling quality, not bare compatibility (the study isolates mapper
    // effectiveness; the paper's dMazeRunner register files follow the
    // mapping, so its minimum config is not RF-starved the way ours is).
    let cfg = AcceleratorConfig {
        noc_phys_links: [64, 64, 64, 64],
        noc_virt_links: [512, 512, 512, 512],
        l1_bytes: 64,
        ..AcceleratorConfig::edge_minimum()
    };
    println!(
        "Fig. 15: mapping optimizers on ResNet-18 layers, reference config\n\
         ({} PEs, {} kB SPM), {} trials per black-box mapper\n",
        cfg.pes,
        cfg.l2_bytes / 1024,
        trials
    );

    // With `--trace-out`, each optimizer's per-layer timing lands in a
    // `mapper/<name>/optimize_us` histogram plus feasible/infeasible
    // counters; a no-op collector makes the wrappers transparent.
    let raw: Vec<Box<dyn MappingOptimizer>> = vec![
        Box::new(RandomMapper::new(trials, args.spec.seed)),
        Box::new(AnnealingMapper::new(trials, args.spec.seed)),
        Box::new(GeneticMapper::new(16, trials / 16, args.spec.seed)),
        Box::new(LinearMapper::new(trials)),
    ];
    let mut mappers: Vec<Box<dyn MappingOptimizer>> = raw
        .into_iter()
        .map(|m| {
            Box::new(InstrumentedMapper::new(m, telemetry.clone())) as Box<dyn MappingOptimizer>
        })
        .collect();

    let layers: Vec<_> = zoo::resnet18()
        .unique_shapes()
        .into_iter()
        .filter(|u| u.shape.kind() != workloads::OpKind::Gemm)
        .collect();

    let mut headers = vec!["layer".to_string()];
    headers.extend(mappers.iter().map(|m| m.name()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut report = BenchReport::new("fig15_mappers", &args);
    let mut totals = vec![0.0f64; mappers.len()];
    let mut failures = vec![0usize; mappers.len()];
    let mut rows = Vec::new();
    for u in &layers {
        let mut row = vec![u.name.clone()];
        for (i, m) in mappers.iter_mut().enumerate() {
            match m.optimize(&u.shape, &cfg) {
                Some(best) => {
                    let ms = best.profile.latency_ms(cfg.freq_mhz);
                    totals[i] += ms * u.count as f64;
                    row.push(format!("{ms:.3}"));
                }
                None => {
                    failures[i] += 1;
                    row.push("fail".into());
                }
            }
        }
        rows.push(row);
    }
    for (i, m) in mappers.iter().enumerate() {
        report.metric(
            &format!("mapper/{}", m.name()),
            Json::obj(vec![
                ("total_weighted_ms", Json::Num(totals[i])),
                ("failed_layers", Json::Num(failures[i] as f64)),
            ]),
        );
    }
    let mut total_row = vec!["TOTAL (weighted ms)".to_string()];
    for (t, f) in totals.iter().zip(&failures) {
        total_row.push(if *f > 0 {
            format!("{t:.2} ({f} fail)")
        } else {
            format!("{t:.2}")
        });
    }
    rows.push(total_row);
    telemetry.flush();
    print_table(&header_refs, &rows);
    println!(
        "\npaper shape: random search reaches low-latency mappings for all layers;\n\
         simulated annealing fails some layers and the genetic algorithm ends\n\
         higher overall — motivating Timeloop-like random search inside the\n\
         black-box codesign baselines and the pruned linear mapper for ours."
    );
    report.write_if_requested(&args);
}
