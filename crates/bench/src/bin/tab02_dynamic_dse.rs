//! Table 2 — Dynamic DSE: latency minimized by every technique within 100
//! iterations. Cells report the best feasible latency in ms; `-` marks
//! runs that found designs meeting area/power but not the throughput
//! floor or mapping compatibility, `-*` marks runs where not even
//! area/power were met.
//!
//! Usage: `tab02_dynamic_dse [--iters N] [--models a,b] [--seed N] [--json PATH]`

use bench::{
    constraints_for, latency_cell, print_table, run_technique, BenchArgs, BenchReport, MapperKind,
    TechniqueKind,
};
use workloads::zoo;

fn main() {
    let mut args = BenchArgs::parse(100);
    if args.quick {
        args.spec.budget = 100; // Table 2's budget *is* the dynamic budget.
    }
    let telemetry = args.telemetry();
    let session = args.session_opts(&telemetry);
    let models = args.models_or(&telemetry, zoo::all_models());
    println!(
        "Table 2: best feasible latency (ms) within {} iterations\n",
        args.spec.budget
    );

    let settings: Vec<(TechniqueKind, MapperKind, String)> = {
        let mut v: Vec<(TechniqueKind, MapperKind, String)> = TechniqueKind::ALL
            .iter()
            .filter(|k| **k != TechniqueKind::Explainable)
            .map(|k| {
                (
                    *k,
                    MapperKind::FixedDataflow,
                    format!("{}-FixDF", k.label()),
                )
            })
            .collect();
        for k in [TechniqueKind::Random, TechniqueKind::HyperMapper] {
            v.push((
                k,
                MapperKind::Random(args.spec.map_trials),
                format!("{}-Codesign", k.label()),
            ));
        }
        v.push((
            TechniqueKind::Explainable,
            MapperKind::Linear(args.spec.map_trials),
            "ExplainableDSE-Codesign".into(),
        ));
        v
    };

    let mut headers: Vec<String> = vec!["technique".into()];
    headers.extend(models.iter().map(|m| m.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut report = BenchReport::new("tab02_dynamic_dse", &args);
    let mut rows = Vec::new();
    let mut explainable_evals = Vec::new();
    for (kind, mapper, label) in &settings {
        let mut row = vec![label.clone()];
        for model in &models {
            let constraints = constraints_for(std::slice::from_ref(model));
            let trace = run_technique(
                *kind,
                *mapper,
                vec![model.clone()],
                args.spec.budget,
                args.spec.seed,
                &telemetry,
                &session,
            );
            report.push_trace(&format!("{label}/{}", model.name()), &trace);
            if *kind == TechniqueKind::Explainable {
                explainable_evals.push(trace.evaluations());
            }
            row.push(latency_cell(&trace, &constraints));
        }
        rows.push(row);
    }
    print_table(&header_refs, &rows);
    if !explainable_evals.is_empty() {
        let mean: f64 =
            explainable_evals.iter().sum::<usize>() as f64 / explainable_evals.len() as f64;
        println!("\nExplainable-DSE evaluated ~{mean:.0} designs (paper: ~54).");
    }
    println!(
        "paper shape: under the short budget, non-explainable techniques mostly\n\
         fail to land feasible designs (shaded/dash cells); Explainable-DSE lands\n\
         solutions one to two orders of magnitude faster."
    );
    report.write_if_requested(&args);
}
