//! Table 3 — Per-acquisition objective reduction: the geometric-mean ratio
//! between successive feasible objective values along each technique's
//! trajectory, reported as the percentage reduction per acquisition
//! (`N/A` when a technique never found two feasible samples).
//!
//! Usage: `tab03_objective_reduction [--full] [--iters N] [--models a,b] [--json PATH]`

use bench::{print_table, run_technique, BenchArgs, BenchReport, MapperKind, TechniqueKind};
use edse_telemetry::json::Json;
use workloads::zoo;

fn cell(g: Option<f64>) -> String {
    match g {
        Some(g) => format!("{:+.2}%", (g - 1.0) * 100.0),
        None => "N/A".into(),
    }
}

fn main() {
    let args = BenchArgs::parse(2500);
    let telemetry = args.telemetry();
    let session = args.session_opts(&telemetry);
    let default = vec![zoo::resnet18(), zoo::efficientnet_b0(), zoo::bert_base()];
    let models = args.models_or(&telemetry, default);
    println!(
        "Table 3: geometric-mean objective reduction per acquisition\n\
         ({} evaluations budget)\n",
        args.spec.budget
    );

    let settings: Vec<(TechniqueKind, MapperKind, String)> = {
        let mut v: Vec<(TechniqueKind, MapperKind, String)> = TechniqueKind::ALL
            .iter()
            .map(|k| {
                (
                    *k,
                    MapperKind::FixedDataflow,
                    format!("{}-FixDF", k.label()),
                )
            })
            .collect();
        v.push((
            TechniqueKind::Explainable,
            MapperKind::Linear(args.spec.map_trials),
            "ExplainableDSE-Codesign".into(),
        ));
        v
    };

    let mut headers: Vec<String> = vec!["technique".into()];
    headers.extend(models.iter().map(|m| m.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut report = BenchReport::new("tab03_objective_reduction", &args);
    let mut rows = Vec::new();
    for (kind, mapper, label) in &settings {
        let mut row = vec![label.clone()];
        for model in &models {
            let trace = run_technique(
                *kind,
                *mapper,
                vec![model.clone()],
                args.spec.budget,
                args.spec.seed,
                &telemetry,
                &session,
            );
            report.push_trace(&format!("{label}/{}", model.name()), &trace);
            report.metric(
                &format!("geomean_reduction/{label}/{}", model.name()),
                trace
                    .geomean_reduction()
                    .map(Json::Num)
                    .unwrap_or(Json::Null),
            );
            row.push(cell(trace.geomean_reduction()));
        }
        rows.push(row);
    }
    print_table(&header_refs, &rows);
    println!(
        "\npaper shape: Explainable-DSE reduces the objective ~30% per acquisition\n\
         on average; non-explainable techniques hover near ~1% (or negative)."
    );
    report.write_if_requested(&args);
}
