//! Table 7 — Mapping-space size analysis for the paper's eleven named
//! layers: free tilings (A), valid factorizations (B), hardware-valid
//! tilings (C, Monte-Carlo estimate against the smallest Table-1
//! configuration), orderings per memory level (D), unique/max-reuse
//! orderings (E), and the composed spaces F = A*D^2, G = B*D^2, H = B*E^2.
//!
//! Usage: `tab07_mapspace [--seed N] [--trials N (MC samples)] [--json PATH]`

use accel_model::AcceleratorConfig;
use bench::{print_table, BenchArgs, BenchReport};
use edse_telemetry::json::Json;
use mapper::layer_space_size;
use workloads::{zoo, LayerShape};

/// The named layers of the paper's Table 7 (model, layer-name hint).
fn table7_layers() -> Vec<(String, LayerShape)> {
    let pick = |model: workloads::DnnModel, hint: &str| -> Option<(String, LayerShape)> {
        model
            .layers()
            .iter()
            .find(|l| l.name.contains(hint))
            .map(|l| (format!("{} {}", model.name(), l.name), l.shape))
    };
    [
        pick(zoo::resnet18(), "layer1.conv"),
        pick(zoo::mobilenet_v2(), "block2.expand"),
        pick(zoo::efficientnet_b0(), "blocks.2.expand"),
        pick(zoo::vgg16(), "conv1_2"),
        pick(zoo::resnet50(), "layer1.0.conv2"),
        pick(zoo::vit_b16(), "patch_embed"),
        pick(zoo::fasterrcnn_mobilenetv3(), "block11.expand"),
        pick(zoo::yolov5(), "backbone.c3_0.m.cv2"),
        pick(zoo::transformer(), "decoder.output_projection"),
        pick(zoo::bert_base(), "encoder.layer.0.mlp1"),
        pick(zoo::wav2vec2(), "encoder.layers.0.mlp1"),
    ]
    .into_iter()
    .flatten()
    .collect()
}

fn pow(v: f64) -> String {
    format!("10^{v:.1}")
}

fn main() {
    let args = BenchArgs::parse(2000);
    let _telemetry = args.telemetry();
    let samples = args.spec.map_trials.max(200);
    let reference = AcceleratorConfig::edge_minimum();
    println!(
        "Table 7: mapping-space sizes (column C: Monte-Carlo with {samples} samples\n\
         against the smallest Table-1 configuration)\n"
    );

    let mut report = BenchReport::new("tab07_mapspace", &args);
    let mut rows = Vec::new();
    for (name, shape) in table7_layers() {
        let s = layer_space_size(&shape, &reference, samples, args.spec.seed);
        report.metric(
            &format!("mapspace/{name}"),
            Json::obj(vec![
                ("log10_free_tilings", Json::Num(s.log10_free_tilings)),
                (
                    "log10_valid_factorizations",
                    Json::Num(s.log10_valid_factorizations),
                ),
                (
                    "log10_hw_valid",
                    s.log10_hw_valid.map(Json::Num).unwrap_or(Json::Null),
                ),
                (
                    "log10_orderings_per_level",
                    Json::Num(s.log10_orderings_per_level),
                ),
                (
                    "unique_reuse_orderings",
                    Json::Num(s.unique_reuse_orderings as f64),
                ),
                (
                    "max_reuse_orderings",
                    Json::Num(s.max_reuse_orderings as f64),
                ),
                ("log10_full_space", Json::Num(s.log10_full_space)),
                (
                    "log10_factorized_space",
                    Json::Num(s.log10_factorized_space),
                ),
                (
                    "log10_reuse_aware_space",
                    Json::Num(s.log10_reuse_aware_space),
                ),
            ]),
        );
        rows.push(vec![
            name,
            pow(s.log10_free_tilings),
            pow(s.log10_valid_factorizations),
            s.log10_hw_valid.map(pow).unwrap_or_else(|| {
                format!(
                    "<10^{:.1}",
                    s.log10_valid_factorizations - (samples as f64).log10()
                )
            }),
            pow(s.log10_orderings_per_level),
            format!("{}/{}", s.unique_reuse_orderings, s.max_reuse_orderings),
            pow(s.log10_full_space),
            pow(s.log10_factorized_space),
            pow(s.log10_reuse_aware_space),
        ]);
    }
    print_table(
        &[
            "layer",
            "A: tilings",
            "B: valid",
            "C: hw-valid",
            "D: orders",
            "E: reuse",
            "F=A*D^2",
            "G=B*D^2",
            "H=B*E^2",
        ],
        &rows,
    );
    println!(
        "\npaper shape: factorization prunes A to B by a square/cube root\n\
         (O(10^22-28) -> O(10^9-14)); hardware validity prunes further to\n\
         O(10^4-7); reuse-aware orderings collapse D^2 ~ O(10^8) to E^2 <= 225."
    );
    report.write_if_requested(&args);
}
