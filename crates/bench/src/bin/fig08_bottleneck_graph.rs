//! Fig. 8 — The populated bottleneck model of one DNN-layer execution,
//! rendered with per-node contributions, plus the analyzer's conclusions
//! (primary bottleneck, required scaling `s`, parameter predictions).
//!
//! Usage: `fig08_bottleneck_graph [--json PATH]`

use accel_model::{AcceleratorConfig, Mapping};
use bench::{BenchArgs, BenchReport};
use edse_core::bottleneck::{dnn_latency_model, LayerCtx};
use edse_telemetry::json::Json;
use workloads::LayerShape;

fn main() {
    let args = BenchArgs::parse(0);
    let _telemetry = args.telemetry();
    // A bandwidth-starved configuration so DMA dominates, as in the figure.
    let cfg = AcceleratorConfig {
        pes: 1024,
        noc_width_bits: 128,
        noc_phys_links: [64, 64, 64, 64],
        noc_virt_links: [64, 64, 64, 64],
        offchip_bw_mbps: 2048,
        ..AcceleratorConfig::edge_baseline()
    };
    let layer = LayerShape::conv(1, 128, 128, 28, 28, 3, 3, 1);
    let mapping = Mapping::fixed_output_stationary(&layer, &cfg);
    let profile = cfg.execute(&layer, &mapping).expect("feasible mapping");

    println!("layer: {}", layer.describe());
    println!(
        "config: {} PEs, {} B RF, {} kB SPM, {} MB/s off-chip, {}-bit NoCs\n",
        cfg.pes,
        cfg.l1_bytes,
        cfg.l2_bytes / 1024,
        cfg.offchip_bw_mbps,
        cfg.noc_width_bits
    );

    let model = dnn_latency_model();
    let ctx = LayerCtx { cfg, profile };
    let analysis = model.analyze(&ctx, 3);

    println!("populated bottleneck graph (value, contribution):\n");
    print!("{}", analysis.tree.render());

    println!("\nanalyzer conclusions:");
    println!("  primary bottleneck factor : {}", analysis.bottleneck);
    println!("  required scaling s        : {:.2}x", analysis.scaling);
    let path: Vec<&str> = analysis
        .tree
        .bottleneck_path()
        .iter()
        .map(|&id| analysis.tree.node(id).name.as_str())
        .collect();
    println!("  dominant path             : {}", path.join(" -> "));
    println!("\nmitigation predictions:");
    for p in &analysis.predictions {
        println!("  param {:>2}: {}", p.param, p.rationale);
    }
    println!(
        "\npaper shape: DMA time dominates; computation and on-chip communication\n\
         contribute ~24-26% each, so balancing requires scaling DMA down ~3.9x\n\
         via off-chip bandwidth or scratchpad reuse (Fig. 8's walkthrough)."
    );

    let mut report = BenchReport::new("fig08_bottleneck_graph", &args);
    report.metric("bottleneck", Json::Str(analysis.bottleneck.to_string()));
    report.metric("scaling", Json::Num(analysis.scaling));
    report.metric(
        "dominant_path",
        Json::Arr(path.iter().map(|n| Json::Str(n.to_string())).collect()),
    );
    report.metric(
        "predictions",
        Json::Arr(
            analysis
                .predictions
                .iter()
                .map(|p| Json::Num(p.param as f64))
                .collect(),
        ),
    );
    report.write_if_requested(&args);
}
