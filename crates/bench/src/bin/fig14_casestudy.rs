//! Fig. 14 / Table 4 case study (§E) — efficiency of the DSE-obtained
//! codesigns against published edge accelerators: Google Coral Edge TPU
//! and Eyeriss.
//!
//! **Substitution note (DESIGN.md §3):** the silicon reference points are
//! the published benchmark numbers the paper itself cites (Edge TPU
//! performance benchmarks \[11\] scaled to 16-bit as in Table 4; the Eyeriss
//! ISCA'16 evaluation), encoded as constants — no silicon is simulated.
//! Our DSE numbers come from this reproduction's models, so *ratios*, not
//! absolute values, are the comparison target.
//!
//! Usage: `fig14_casestudy [--full] [--iters N] [--json PATH]`

use bench::{print_table, run_technique, BenchArgs, BenchReport, MapperKind, TechniqueKind};
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::edge_space;
use edse_telemetry::json::Json;
use mapper::LinearMapper;
use workloads::zoo;

/// Published reference points: (model, FPS, area mm^2, power W).
struct Reference {
    name: &'static str,
    model: &'static str,
    fps: f64,
    area_mm2: f64,
    power_w: f64,
}

fn references() -> Vec<Reference> {
    vec![
        // Edge TPU benchmark FPS scaled for 16-bit precision (paper Table 4
        // scales the published 8-bit numbers); ~1.4 W per the datasheet
        // figure the paper cites, area from die estimates (~25 mm^2).
        Reference {
            name: "EdgeTPU",
            model: "MobileNetV2",
            fps: 200.0,
            area_mm2: 25.0,
            power_w: 1.4,
        },
        Reference {
            name: "EdgeTPU",
            model: "ResNet50",
            fps: 28.0,
            area_mm2: 25.0,
            power_w: 1.4,
        },
        // Eyeriss (ISCA'16): AlexNet 35 FPS at 278 mW, 12.25 mm^2 at 65 nm;
        // VGG16 0.7 FPS. We compare on VGG16.
        Reference {
            name: "Eyeriss",
            model: "VGG16",
            fps: 0.7,
            area_mm2: 12.25,
            power_w: 0.278,
        },
    ]
}

fn main() {
    let args = BenchArgs::parse(400);
    let telemetry = args.telemetry();
    let session = args.session_opts(&telemetry);
    println!("Fig. 14: DSE codesigns vs published edge accelerators\n");

    let mut report = BenchReport::new("fig14_casestudy", &args);
    let mut rows = Vec::new();
    for r in references() {
        let Some(model) = zoo::by_name(r.model) else {
            continue;
        };
        let trace = run_technique(
            TechniqueKind::Explainable,
            MapperKind::Linear(args.spec.map_trials),
            vec![model.clone()],
            args.spec.budget,
            args.spec.seed,
            &telemetry,
            &session,
        );
        report.push_trace(&format!("explainable-codesign/{}", r.model), &trace);
        let Some(best) = trace.best_feasible() else {
            rows.push(vec![
                r.model.into(),
                "no feasible design".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
            continue;
        };
        // Re-evaluate the best point for area/power/energy.
        let mut ev = CodesignEvaluator::new(
            edge_space(),
            vec![model.clone()],
            LinearMapper::new(args.spec.map_trials),
        );
        if let Some(disk) = &session.disk {
            ev = ev.with_disk_cache(disk.clone());
        }
        let eval = ev.evaluate(&best.point);
        let fps = 1000.0 / best.objective;
        let fps_per_mm2 = fps / eval.area_mm2;
        // Energy per inference (J) from the execution model.
        let fps_per_j = if eval.energy_mj > 0.0 {
            1000.0 / eval.energy_mj
        } else {
            0.0
        };

        let ref_fps_per_mm2 = r.fps / r.area_mm2;
        let ref_fps_per_w = r.fps / r.power_w;
        report.metric(
            &format!("case/{}", r.model),
            Json::obj(vec![
                ("fps", Json::Num(fps)),
                ("fps_per_mm2", Json::Num(fps_per_mm2)),
                ("fps_per_j", Json::Num(fps_per_j)),
                ("speedup_vs_reference", Json::Num(fps / r.fps)),
                (
                    "area_efficiency_gain",
                    Json::Num(fps_per_mm2 / ref_fps_per_mm2),
                ),
            ]),
        );
        rows.push(vec![
            r.model.to_string(),
            format!(
                "{} ({:.1} FPS, {:.1} FPS/mm2, {:.0} FPS/W)",
                r.name, r.fps, ref_fps_per_mm2, ref_fps_per_w
            ),
            format!("{fps:.1}"),
            format!("{fps_per_mm2:.1}"),
            format!("{fps_per_j:.0}"),
            format!(
                "{:.1}x / {:.1}x",
                fps / r.fps,
                fps_per_mm2 / ref_fps_per_mm2
            ),
        ]);
    }
    print_table(
        &[
            "model",
            "reference (published)",
            "DSE FPS",
            "DSE FPS/mm2",
            "DSE FPS/J",
            "speedup / area-eff gain",
        ],
        &rows,
    );
    println!(
        "\npaper shape: DSE codesigns reach ~3.7x the Edge TPU's throughput and\n\
         ~49x its area efficiency on average (an order of magnitude less silicon),\n\
         with energy efficiency comparable to the EfficientNet-EdgeTPU codesign."
    );
    report.write_if_requested(&args);
}
