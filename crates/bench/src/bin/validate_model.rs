//! Cost-model validation: analytical latency vs the event-driven tile
//! pipeline simulator, across layers and mapping styles.
//!
//! This experiment has no direct counterpart figure in the paper — it
//! addresses the calibration note that the whole evaluation rests on
//! analytical models (ideal overlap). For each layer we report the
//! analytical `max(T_comp, T_comm, T_dma)` bound, the simulated pipeline
//! latency, and the overlap inefficiency (sim / busiest-resource bound);
//! values near 1.0 mean the ideal-overlap assumption is sound for that
//! mapping.
//!
//! Usage: `validate_model [--models a,b] [--json PATH]`

use accel_model::{simulate, AcceleratorConfig};
use bench::{print_table, BenchArgs, BenchReport};
use edse_telemetry::json::Json;
use mapper::{FixedMapper, LinearMapper, MappingOptimizer};
use workloads::zoo;

fn main() {
    let args = BenchArgs::parse(0);
    let telemetry = args.telemetry();
    let models = args.models_or(&telemetry, vec![zoo::resnet18(), zoo::mobilenet_v2()]);
    let cfg = AcceleratorConfig {
        pes: 256,
        l1_bytes: 128,
        l2_bytes: 256 * 1024,
        noc_phys_links: [64; 4],
        noc_virt_links: [512; 4],
        ..AcceleratorConfig::edge_baseline()
    };
    println!(
        "cost-model validation on {} PEs / {} kB SPM (sim limit 2M steps)\n",
        cfg.pes,
        cfg.l2_bytes / 1024
    );

    let mut report = BenchReport::new("validate_model", &args);
    let mut rows = Vec::new();
    let mut ineffs: Vec<f64> = Vec::new();
    for model in &models {
        for u in model.unique_shapes() {
            for (style, mapped) in [
                ("fixed-os", FixedMapper.optimize(&u.shape, &cfg)),
                ("linear", LinearMapper::new(60).optimize(&u.shape, &cfg)),
            ] {
                let Some(mapped) = mapped else { continue };
                let analytical = mapped.profile.latency_cycles;
                match simulate(&cfg, &u.shape, &mapped.mapping, 2_000_000) {
                    Ok(sim) => {
                        let ineff = sim.overlap_inefficiency();
                        ineffs.push(ineff);
                        report.metric(
                            &format!("case/{} {}/{style}", model.name(), u.name),
                            Json::obj(vec![
                                ("analytical_cycles", Json::Num(analytical)),
                                ("simulated_cycles", Json::Num(sim.cycles)),
                                ("overlap_inefficiency", Json::Num(ineff)),
                            ]),
                        );
                        rows.push(vec![
                            format!("{} {}", model.name(), u.name),
                            style.into(),
                            format!("{analytical:.0}"),
                            format!("{:.0}", sim.cycles),
                            format!("{:.2}", sim.cycles / analytical),
                            format!("{ineff:.2}"),
                        ]);
                    }
                    Err(_) => continue, // nest too large for simulation
                }
            }
        }
    }
    print_table(
        &[
            "layer",
            "mapping",
            "analytical (cyc)",
            "simulated (cyc)",
            "sim/analytical",
            "overlap ineff.",
        ],
        &rows,
    );
    if !ineffs.is_empty() {
        let mean = ineffs.iter().sum::<f64>() / ineffs.len() as f64;
        let max = ineffs.iter().cloned().fold(0.0, f64::max);
        report.metric("simulable_cases", Json::Num(ineffs.len() as f64));
        report.metric("mean_overlap_inefficiency", Json::Num(mean));
        report.metric("max_overlap_inefficiency", Json::Num(max));
        println!(
            "\noverlap inefficiency over {} simulable cases: mean {:.2}, max {:.2}",
            ineffs.len(),
            mean,
            max
        );
        println!(
            "interpretation: values near 1 validate the analytical ideal-overlap\n\
             assumption the paper's evaluation (and dMazeRunner) relies on."
        );
    }
    report.write_if_requested(&args);
}
