//! Renders a `--trace-out` JSONL telemetry trace as a human-readable
//! search narrative: the causal span tree, one line per DSE iteration (with
//! the dominant bottleneck and the proposed/deduped/evaluated funnel),
//! evaluator cache hit rates, batch-engine thread utilization, and stage
//! timing summaries.
//!
//! Exits non-zero when any line fails to parse, so CI can assert a trace
//! is well-formed by piping it through this binary.
//!
//! Usage: `trace_report <trace.jsonl> [--json PATH]`

use bench::{BenchArgs, BenchReport};
use edse_telemetry::json::Json;
use edse_telemetry::{trace, Event, Level};
use std::collections::BTreeMap;

fn fmt_ms(objective: f64) -> String {
    if objective.is_finite() {
        format!("{objective:.3} ms")
    } else {
        "unmappable".into()
    }
}

/// `hit / (hit + miss + inflight_wait)` for one cache prefix, summed over
/// every counter snapshot in the trace.
fn hit_rate(totals: &BTreeMap<String, u64>, cache: &str) -> Option<(f64, u64)> {
    let sum = |kind: &str| -> u64 {
        totals
            .iter()
            .filter(|(k, _)| k.starts_with(cache) && k.ends_with(kind))
            .map(|(_, v)| *v)
            .sum()
    };
    let hits = sum("/hit");
    let total = hits + sum("/miss") + sum("/inflight_wait");
    (total > 0).then(|| (hits as f64 / total as f64, total))
}

fn main() {
    let path = match std::env::args().nth(1).filter(|a| !a.starts_with("--")) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_report <trace.jsonl> [--json PATH]");
            std::process::exit(2);
        }
    };
    let mut args = BenchArgs::parse(0);
    // The first positional argument is the trace path, not an unknown flag.
    args.warnings
        .retain(|w| !w.ends_with(&format!("argument {path}")));
    let events = match bench::load_events(&path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let span_s = events.iter().map(Event::t_us).max().unwrap_or(0) as f64 / 1e6;
    println!("# Trace report: {path}\n");
    println!("{} events over {span_s:.2} s\n", events.len());
    // Counts only — the trace's own wall-clock stays out of the JSON so
    // reports remain comparable across machines (see bench::report).
    let mut report = BenchReport::new("trace_report", &args);
    report.metric("events", Json::Num(events.len() as f64));

    // -- Span tree ---------------------------------------------------------
    let tree = trace::SpanTree::build(&events);
    if !tree.nodes.is_empty() {
        println!("## Spans\n");
        // Depth-first walk so children render indented under their
        // parent — the causal structure, not just a flat timeline.
        let mut stack: Vec<(usize, usize)> = tree.roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((idx, depth)) = stack.pop() {
            let node = &tree.nodes[idx];
            println!(
                "- {:indent$}{}: {:.3} s (self {:.3} s, from t+{:.3} s)",
                "",
                node.name,
                node.elapsed_us as f64 / 1e6,
                tree.self_us(idx) as f64 / 1e6,
                node.start_us as f64 / 1e6,
                indent = depth * 2
            );
            for &child in node.children.iter().rev() {
                stack.push((child, depth + 1));
            }
        }
        println!();
    }

    // -- Per-iteration search narrative -----------------------------------
    let iterations: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Iteration { record, .. } => Some(record),
            _ => None,
        })
        .collect();
    if !iterations.is_empty() {
        report.metric("iterations", Json::Num(iterations.len() as f64));
        if let Some(best) = iterations.iter().rev().find_map(|r| r.best_objective) {
            report.metric("final_best_objective", Json::Num(best));
        }
        println!("## Search narrative ({} iterations)\n", iterations.len());
        for rec in &iterations {
            let mut line = format!(
                "iter {:>3} [{}] incumbent {}",
                rec.iteration,
                rec.technique,
                fmt_ms(rec.incumbent_objective)
            );
            if let Some(best) = rec.best_objective {
                line.push_str(&format!(", best {}", fmt_ms(best)));
            }
            match (&rec.bottleneck, rec.scaling) {
                (Some(b), Some(s)) => line.push_str(&format!(" | bottleneck {b} (needs s={s:.2})")),
                (Some(b), None) => line.push_str(&format!(" | bottleneck {b}")),
                (None, _) => line.push_str(" | no bottleneck analysis (black box)"),
            }
            if !rec.layer_contributions.is_empty() {
                let top: Vec<String> = rec
                    .layer_contributions
                    .iter()
                    .take(3)
                    .map(|(name, c)| format!("{name} {:.1}%", c * 100.0))
                    .collect();
                line.push_str(&format!(" | top layers: {}", top.join(", ")));
            }
            line.push_str(&format!(
                " | proposed {} -> deduped {} -> evaluated {} (budget left {})",
                rec.proposed, rec.deduped, rec.evaluated, rec.budget_remaining
            ));
            println!("{line}");
            println!("         decision: {}", rec.decision);
        }
        println!();
    }

    // -- Evaluator cache traffic ------------------------------------------
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for e in &events {
        if let Event::Counters { deltas, .. } = e {
            for (name, v) in deltas {
                *totals.entry(name.clone()).or_insert(0) += v;
            }
        }
    }
    if !totals.is_empty() {
        println!("## Evaluator caches\n");
        for cache in ["point_cache/", "layer_cache/", "disk_cache/"] {
            if let Some((rate, total)) = hit_rate(&totals, cache) {
                report.metric(
                    &format!("{}hit_rate", cache),
                    Json::obj(vec![
                        ("rate", Json::Num(rate)),
                        ("accesses", Json::Num(total as f64)),
                    ]),
                );
                println!(
                    "- {} hit rate: {:.1}% over {total} accesses",
                    cache.trim_end_matches('/'),
                    rate * 100.0
                );
            }
        }
        // Everything not folded into a hit rate above; the disk tier's
        // maintenance counters (appends, recovery) stay visible here.
        let other: Vec<(&String, &u64)> = totals
            .iter()
            .filter(|(k, _)| {
                !k.starts_with("point_cache/")
                    && !k.starts_with("layer_cache/")
                    && !k.starts_with("executor/")
                    && k.as_str() != "disk_cache/hit"
                    && k.as_str() != "disk_cache/miss"
            })
            .collect();
        for (name, v) in other {
            println!("- {name}: {v}");
        }
        println!();
    }

    // -- Shared executor pool ---------------------------------------------
    let executor: Vec<(&String, &u64)> = totals
        .iter()
        .filter(|(k, _)| k.starts_with("executor/"))
        .collect();
    if !executor.is_empty() {
        println!("## Executor pool\n");
        for (name, v) in &executor {
            let short = name.trim_start_matches("executor/");
            report.metric(name, Json::Num(**v as f64));
            match short {
                "spawn_avoided" => {
                    println!("- spawn_avoided: {v} (threads the scoped implementation would have spawned)")
                }
                "steals" => {
                    println!("- steals: {v} (tasks executed by a pool worker, not the submitter)")
                }
                "queue_depth" => {
                    println!("- queue_depth: {v} (scopes already live at submit, summed)")
                }
                "idle_ns" => println!("- idle_ns: {v} (pool workers parked waiting for work)"),
                _ => println!("- {short}: {v}"),
            }
        }
        println!();
    }

    // -- Batch engine thread utilization ----------------------------------
    let batches: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Batch { record, .. } => Some(record),
            _ => None,
        })
        .collect();
    if !batches.is_empty() {
        println!("## Batch engine\n");
        let mut stages: BTreeMap<&str, (u64, u64, u64, f64)> = BTreeMap::new();
        for b in &batches {
            let entry = stages.entry(b.stage.as_str()).or_insert((0, 0, 0, 0.0));
            entry.0 += 1;
            entry.1 += b.items;
            entry.2 = entry.2.max(b.threads);
            entry.3 += b.balance();
        }
        for (stage, (count, items, threads, balance_sum)) in stages {
            println!(
                "- {stage}: {count} batches, {items} tasks, up to {threads} threads, \
                 mean utilization {:.0}%",
                100.0 * balance_sum / count as f64
            );
        }
        println!();
    }

    // -- Stage timings (cumulative histograms; the last snapshot wins) ----
    let last_histograms = events.iter().rev().find_map(|e| match e {
        Event::Histograms { summaries, .. } => Some(summaries),
        _ => None,
    });
    if let Some(summaries) = last_histograms {
        println!("## Stage timings\n");
        for h in summaries {
            println!(
                "- {}: {} samples, mean {:.0} us (min {:.0}, max {:.0})",
                h.name,
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
        println!();
    }

    // -- Logs --------------------------------------------------------------
    let logs: Vec<(&Level, &String)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Log { level, message, .. } => Some((level, message)),
            _ => None,
        })
        .collect();
    if !logs.is_empty() {
        println!("## Logs ({})\n", logs.len());
        for (level, message) in &logs {
            println!("- [{level}] {message}");
        }
    }
    report.metric("log_lines", Json::Num(logs.len() as f64));
    report.write_if_requested(&args);
}

// Trace-loading edge cases (malformed lines, empty traces, diagnostic
// columns) are covered by the unit tests in `bench::tracefile`.
