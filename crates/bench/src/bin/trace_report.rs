//! Renders a `--trace-out` JSONL telemetry trace as a human-readable
//! search narrative: the span timeline, one line per DSE iteration (with
//! the dominant bottleneck and the proposed/deduped/evaluated funnel),
//! evaluator cache hit rates, batch-engine thread utilization, and stage
//! timing summaries.
//!
//! Exits non-zero when any line fails to parse, so CI can assert a trace
//! is well-formed by piping it through this binary.
//!
//! Usage: `trace_report <trace.jsonl> [--json PATH]`

use bench::{BenchArgs, BenchReport};
use edse_telemetry::json::Json;
use edse_telemetry::{json, Event, Level};
use std::collections::BTreeMap;

fn fmt_ms(objective: f64) -> String {
    if objective.is_finite() {
        format!("{objective:.3} ms")
    } else {
        "unmappable".into()
    }
}

/// Pinpoints why a trace line failed to parse: the 1-based column and the
/// most precise message available.
///
/// [`Event::parse_json_line`] reports event-level problems (unknown kind,
/// missing field) without a position, so the line is re-parsed as plain
/// JSON: a syntax failure there carries the byte offset of the defect
/// (column = byte + 1); a line that *is* valid JSON but not a valid event
/// gets column 1 with the event-level message.
fn locate_failure(line: &str, error: &str) -> (usize, String) {
    match json::parse(line) {
        Err(e) => (e.byte + 1, e.message),
        Ok(_) => (1, error.to_string()),
    }
}

/// `hit / (hit + miss + inflight_wait)` for one cache prefix, summed over
/// every counter snapshot in the trace.
fn hit_rate(totals: &BTreeMap<String, u64>, cache: &str) -> Option<(f64, u64)> {
    let sum = |kind: &str| -> u64 {
        totals
            .iter()
            .filter(|(k, _)| k.starts_with(cache) && k.ends_with(kind))
            .map(|(_, v)| *v)
            .sum()
    };
    let hits = sum("/hit");
    let total = hits + sum("/miss") + sum("/inflight_wait");
    (total > 0).then(|| (hits as f64 / total as f64, total))
}

fn main() {
    let path = match std::env::args().nth(1).filter(|a| !a.starts_with("--")) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_report <trace.jsonl> [--json PATH]");
            std::process::exit(2);
        }
    };
    let mut args = BenchArgs::parse(0);
    // The first positional argument is the trace path, not an unknown flag.
    args.warnings
        .retain(|w| !w.ends_with(&format!("argument {path}")));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };

    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::parse_json_line(line) {
            Ok(event) => events.push(event),
            Err(e) => {
                let (col, message) = locate_failure(line, &e);
                eprintln!("{path}:{}:{col}: unparseable trace line: {message}", i + 1);
                eprintln!("  offending record: {line}");
                std::process::exit(1);
            }
        }
    }
    if events.is_empty() {
        eprintln!("{path}: empty trace");
        std::process::exit(1);
    }
    let span_s = events.iter().map(Event::t_us).max().unwrap_or(0) as f64 / 1e6;
    println!("# Trace report: {path}\n");
    println!("{} events over {span_s:.2} s\n", events.len());
    // Counts only — the trace's own wall-clock stays out of the JSON so
    // reports remain comparable across machines (see bench::report).
    let mut report = BenchReport::new("trace_report", &args);
    report.metric("events", Json::Num(events.len() as f64));

    // -- Span timeline ----------------------------------------------------
    let spans: Vec<(&String, u64, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::SpanExit {
                name,
                t_us,
                elapsed_us,
            } => Some((name, t_us.saturating_sub(*elapsed_us), *elapsed_us)),
            _ => None,
        })
        .collect();
    if !spans.is_empty() {
        println!("## Spans\n");
        for (name, start_us, elapsed_us) in spans {
            println!(
                "- {name}: {:.3} s (from t+{:.3} s)",
                elapsed_us as f64 / 1e6,
                start_us as f64 / 1e6
            );
        }
        println!();
    }

    // -- Per-iteration search narrative -----------------------------------
    let iterations: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Iteration { record, .. } => Some(record),
            _ => None,
        })
        .collect();
    if !iterations.is_empty() {
        report.metric("iterations", Json::Num(iterations.len() as f64));
        if let Some(best) = iterations.iter().rev().find_map(|r| r.best_objective) {
            report.metric("final_best_objective", Json::Num(best));
        }
        println!("## Search narrative ({} iterations)\n", iterations.len());
        for rec in &iterations {
            let mut line = format!(
                "iter {:>3} [{}] incumbent {}",
                rec.iteration,
                rec.technique,
                fmt_ms(rec.incumbent_objective)
            );
            if let Some(best) = rec.best_objective {
                line.push_str(&format!(", best {}", fmt_ms(best)));
            }
            match (&rec.bottleneck, rec.scaling) {
                (Some(b), Some(s)) => line.push_str(&format!(" | bottleneck {b} (needs s={s:.2})")),
                (Some(b), None) => line.push_str(&format!(" | bottleneck {b}")),
                (None, _) => line.push_str(" | no bottleneck analysis (black box)"),
            }
            if !rec.layer_contributions.is_empty() {
                let top: Vec<String> = rec
                    .layer_contributions
                    .iter()
                    .take(3)
                    .map(|(name, c)| format!("{name} {:.1}%", c * 100.0))
                    .collect();
                line.push_str(&format!(" | top layers: {}", top.join(", ")));
            }
            line.push_str(&format!(
                " | proposed {} -> deduped {} -> evaluated {} (budget left {})",
                rec.proposed, rec.deduped, rec.evaluated, rec.budget_remaining
            ));
            println!("{line}");
            println!("         decision: {}", rec.decision);
        }
        println!();
    }

    // -- Evaluator cache traffic ------------------------------------------
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for e in &events {
        if let Event::Counters { deltas, .. } = e {
            for (name, v) in deltas {
                *totals.entry(name.clone()).or_insert(0) += v;
            }
        }
    }
    if !totals.is_empty() {
        println!("## Evaluator caches\n");
        for cache in ["point_cache/", "layer_cache/", "disk_cache/"] {
            if let Some((rate, total)) = hit_rate(&totals, cache) {
                report.metric(
                    &format!("{}hit_rate", cache),
                    Json::obj(vec![
                        ("rate", Json::Num(rate)),
                        ("accesses", Json::Num(total as f64)),
                    ]),
                );
                println!(
                    "- {} hit rate: {:.1}% over {total} accesses",
                    cache.trim_end_matches('/'),
                    rate * 100.0
                );
            }
        }
        // Everything not folded into a hit rate above; the disk tier's
        // maintenance counters (appends, recovery) stay visible here.
        let other: Vec<(&String, &u64)> = totals
            .iter()
            .filter(|(k, _)| {
                !k.starts_with("point_cache/")
                    && !k.starts_with("layer_cache/")
                    && k.as_str() != "disk_cache/hit"
                    && k.as_str() != "disk_cache/miss"
            })
            .collect();
        for (name, v) in other {
            println!("- {name}: {v}");
        }
        println!();
    }

    // -- Batch engine thread utilization ----------------------------------
    let batches: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Batch { record, .. } => Some(record),
            _ => None,
        })
        .collect();
    if !batches.is_empty() {
        println!("## Batch engine\n");
        let mut stages: BTreeMap<&str, (u64, u64, u64, f64)> = BTreeMap::new();
        for b in &batches {
            let entry = stages.entry(b.stage.as_str()).or_insert((0, 0, 0, 0.0));
            entry.0 += 1;
            entry.1 += b.items;
            entry.2 = entry.2.max(b.threads);
            entry.3 += b.balance();
        }
        for (stage, (count, items, threads, balance_sum)) in stages {
            println!(
                "- {stage}: {count} batches, {items} tasks, up to {threads} threads, \
                 mean utilization {:.0}%",
                100.0 * balance_sum / count as f64
            );
        }
        println!();
    }

    // -- Stage timings (cumulative histograms; the last snapshot wins) ----
    let last_histograms = events.iter().rev().find_map(|e| match e {
        Event::Histograms { summaries, .. } => Some(summaries),
        _ => None,
    });
    if let Some(summaries) = last_histograms {
        println!("## Stage timings\n");
        for h in summaries {
            println!(
                "- {}: {} samples, mean {:.0} us (min {:.0}, max {:.0})",
                h.name,
                h.count,
                h.mean(),
                h.min,
                h.max
            );
        }
        println!();
    }

    // -- Logs --------------------------------------------------------------
    let logs: Vec<(&Level, &String)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Log { level, message, .. } => Some((level, message)),
            _ => None,
        })
        .collect();
    if !logs.is_empty() {
        println!("## Logs ({})\n", logs.len());
        for (level, message) in &logs {
            println!("- [{level}] {message}");
        }
    }
    report.metric("log_lines", Json::Num(logs.len() as f64));
    report.write_if_requested(&args);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntax_errors_carry_the_defects_column() {
        // Broken mid-object: the value after "t_us": is missing, so the
        // parser gives up on the `}` at byte 21 — column 22.
        let line = r#"{"kind":"log","t_us":}"#;
        let err = Event::parse_json_line(line).unwrap_err();
        let (col, message) = locate_failure(line, &err);
        assert_eq!(col, 22, "column must point at the defect, got {message}");
        assert!(!message.is_empty());
    }

    #[test]
    fn valid_json_invalid_event_points_at_column_one() {
        let line = r#"{"kind":"no-such-event"}"#;
        let err = Event::parse_json_line(line).unwrap_err();
        let (col, message) = locate_failure(line, &err);
        assert_eq!(col, 1);
        // The event-level message survives verbatim.
        assert_eq!(message, err);
    }

    #[test]
    fn trailing_garbage_is_located_after_the_document() {
        let line = r#"{"kind":"log"} extra"#;
        let err = Event::parse_json_line(line).unwrap_err();
        let (col, _) = locate_failure(line, &err);
        assert_eq!(col, 16, "column of the first trailing character");
    }
}
