//! Fig. 12 — Feasibility of the acquisitions per technique: the share of
//! evaluated designs meeting (a) area+power constraints only and (b) all
//! constraints including the throughput floor, averaged over the selected
//! models.
//!
//! Usage: `fig12_feasibility [--full] [--iters N] [--models a,b] [--json PATH]`

use bench::{
    constraints_for, print_table, run_technique, BenchArgs, BenchReport, MapperKind, TechniqueKind,
};
use edse_telemetry::json::Json;
use workloads::zoo;

fn main() {
    let args = BenchArgs::parse(2500);
    let telemetry = args.telemetry();
    let session = args.session_opts(&telemetry);
    let default = vec![zoo::resnet18(), zoo::mobilenet_v2(), zoo::bert_base()];
    let models = args.models_or(&telemetry, default);
    println!(
        "Fig. 12: feasibility of explored solutions ({} evaluations, mean over {} models)\n",
        args.spec.budget,
        models.len()
    );

    let settings = [
        (TechniqueKind::Random, MapperKind::FixedDataflow),
        (TechniqueKind::Genetic, MapperKind::FixedDataflow),
        (TechniqueKind::Bayesian, MapperKind::FixedDataflow),
        (TechniqueKind::HyperMapper, MapperKind::FixedDataflow),
        (TechniqueKind::Rl, MapperKind::FixedDataflow),
        (TechniqueKind::Explainable, MapperKind::FixedDataflow),
        (
            TechniqueKind::Random,
            MapperKind::Random(args.spec.map_trials),
        ),
        (
            TechniqueKind::HyperMapper,
            MapperKind::Random(args.spec.map_trials),
        ),
        (
            TechniqueKind::Explainable,
            MapperKind::Linear(args.spec.map_trials),
        ),
    ];

    let mut report = BenchReport::new("fig12_feasibility", &args);
    let mut rows = Vec::new();
    for (kind, mapper) in settings {
        let label = format!("{}{}", kind.label(), mapper.suffix());
        let mut area_power = 0.0;
        let mut all = 0.0;
        for model in &models {
            let constraints = constraints_for(std::slice::from_ref(model));
            let trace = run_technique(
                kind,
                mapper,
                vec![model.clone()],
                args.spec.budget,
                args.spec.seed,
                &telemetry,
                &session,
            );
            report.push_trace(&format!("{label}/{}", model.name()), &trace);
            area_power += trace.feasibility_rate_first(2, &constraints);
            all += trace.feasibility_rate();
        }
        let n = models.len() as f64;
        report.metric(
            &format!("mean_area_power_feasibility/{label}"),
            Json::Num(area_power / n),
        );
        report.metric(&format!("mean_all_feasibility/{label}"), Json::Num(all / n));
        rows.push(vec![
            label,
            format!("{:.1}%", 100.0 * area_power / n),
            format!("{:.1}%", 100.0 * all / n),
        ]);
    }
    print_table(
        &[
            "technique",
            "area+power feasible",
            "all constraints feasible",
        ],
        &rows,
    );
    println!(
        "\npaper shape: black-box acquisitions are ~0.1-0.6% feasible once the\n\
         throughput floor counts; Explainable-DSE reaches 87% (area+power) and\n\
         ~15% (all constraints), and never leaves the feasible region once found."
    );
    report.write_if_requested(&args);
}
