//! Fig. 3 — Effectiveness of non-explainable vs explainable DSE for the
//! EfficientNet-B0 edge-accelerator design: (a) efficiency (best latency),
//! (b) feasibility (% of evaluated solutions meeting constraints),
//! (c) agility (exploration time).
//!
//! Usage: `fig03_effectiveness [--full] [--iters N] [--seed N] [--json PATH]`

use bench::{
    constraints_for, print_table, run_technique, BenchArgs, BenchReport, MapperKind, TechniqueKind,
};
use edse_telemetry::json::Json;
use workloads::zoo;

fn main() {
    let args = BenchArgs::parse(2500);
    let telemetry = args.telemetry();
    let session = args.session_opts(&telemetry);
    let model = zoo::efficientnet_b0();
    let constraints = constraints_for(std::slice::from_ref(&model));
    println!(
        "Fig. 3: DSE effectiveness for {} ({} iterations budget)\n",
        model.name(),
        args.spec.budget
    );

    let mut report = BenchReport::new("fig03_effectiveness", &args);
    let mut rows = Vec::new();
    for kind in TechniqueKind::ALL {
        let trace = run_technique(
            kind,
            MapperKind::FixedDataflow,
            vec![model.clone()],
            args.spec.budget,
            args.spec.seed,
            &telemetry,
            &session,
        );
        report.push_trace(kind.label(), &trace);
        report.metric(
            &format!("area_power_feasibility/{}", kind.label()),
            Json::Num(trace.feasibility_rate_first(2, &constraints)),
        );
        let best = trace
            .best_feasible()
            .map(|s| format!("{:.2}", s.objective))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            kind.label().to_string(),
            trace.evaluations().to_string(),
            best,
            format!("{:.1}%", trace.feasibility_rate() * 100.0),
            format!(
                "{:.1}%",
                trace.feasibility_rate_first(2, &constraints) * 100.0
            ),
            format!("{:.2}", trace.wall_seconds / 60.0),
        ]);
    }
    print_table(
        &[
            "technique",
            "evals",
            "best latency (ms)",
            "feasible (all)",
            "feasible (area+power)",
            "time (min)",
        ],
        &rows,
    );
    println!(
        "\npaper shape: non-explainable DSEs reach up to 35x higher latency even\n\
         after 2500 trials, with <=18% feasibility; Explainable-DSE converges in\n\
         tens of evaluations within minutes."
    );
    report.write_if_requested(&args);
}
