//! `edse-trace`: offline forensics over a `--trace-out` JSONL trace.
//!
//! Subcommands:
//!
//! - `summary <trace>` — per-phase self-time table (from the causal span
//!   tree) and the candidate funnel (proposed → deduped → evaluated,
//!   cache hit rates);
//! - `why <trace> [best|i,j,...]` — the provenance chain for a candidate
//!   as the paper's bottleneck narrative: which incumbent it was derived
//!   from, which dominant bottleneck factor and scaling action proposed
//!   it, and whether it became the incumbent. Deterministic: identical
//!   runs render byte-identical output;
//! - `flamegraph <trace>` — collapsed-stack text (`path self_µs` lines)
//!   for flamegraph.pl / speedscope / inferno;
//! - `chrome <trace>` — Chrome trace-event JSON (`chrome://tracing`,
//!   Perfetto), self-validated before printing;
//! - `diff <a> <b>` — side-by-side span self-time and counter totals of
//!   two traces.
//!
//! Exits 2 on usage errors, 1 on unreadable/malformed/empty traces or
//! when the requested analysis is impossible (e.g. `why` on a trace with
//! no provenance ledger).

use edse_telemetry::{export, json, trace, Event};
use std::collections::BTreeMap;

const USAGE: &str = "usage: edse-trace <command> <trace.jsonl> [...]

commands:
  summary    <trace>              per-phase self-time table and candidate funnel
  why        <trace> [best|i,j,…] provenance chain for a candidate (default: best)
  flamegraph <trace>              collapsed-stack text for flamegraph tools
  chrome     <trace>              Chrome trace-event JSON (self-validated)
  diff       <a> <b>              compare span self-times and counters of two traces";

fn usage_exit() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn load(path: &str) -> Vec<Event> {
    match bench::load_events(path) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// Parses a `why` target: `best` (or nothing) means the final
/// incumbent; otherwise a design point as comma-separated indices,
/// with optional surrounding brackets (`3,1,2` or `[3, 1, 2]`).
fn parse_target(arg: Option<&str>) -> Result<Option<Vec<usize>>, String> {
    let arg = match arg {
        None => return Ok(None),
        Some("best") => return Ok(None),
        Some(a) => a,
    };
    let trimmed = arg.trim().trim_start_matches('[').trim_end_matches(']');
    let point: Result<Vec<usize>, _> = trimmed
        .split(',')
        .map(|s| s.trim().parse::<usize>())
        .collect();
    match point {
        Ok(p) if !p.is_empty() => Ok(Some(p)),
        _ => Err(format!(
            "cannot parse candidate {arg:?}: expected `best` or comma-separated indices like 3,1,2"
        )),
    }
}

fn fmt_ms(us: u64) -> String {
    format!("{:.3}", us as f64 / 1e3)
}

/// The `summary` report: schema line, per-span-name table sorted by
/// self-time (descending; name-tiebreak keeps it deterministic), then
/// the candidate funnel from the provenance ledger and cache counters.
fn summary_text(events: &[Event]) -> String {
    let mut out = String::new();
    let schema = events.iter().find_map(|e| match e {
        Event::Meta { schema, .. } => Some(schema.as_str()),
        _ => None,
    });
    out.push_str(&format!(
        "{} events, schema {}\n\n",
        events.len(),
        schema.unwrap_or("unknown (pre-v2 trace)")
    ));

    let tree = trace::SpanTree::build(events);
    let mut stats = tree.aggregate();
    stats.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    if !stats.is_empty() {
        out.push_str("# Spans (self time, descending)\n");
        out.push_str(&format!(
            "{:<28} {:>6} {:>12} {:>12}\n",
            "name", "count", "total_ms", "self_ms"
        ));
        for s in &stats {
            out.push_str(&format!(
                "{:<28} {:>6} {:>12} {:>12}\n",
                s.name,
                s.count,
                fmt_ms(s.total_us),
                fmt_ms(s.self_us)
            ));
        }
        out.push('\n');
    }

    let records = trace::provenance_records(events);
    if !records.is_empty() {
        let count = |outcome: &str| records.iter().filter(|r| r.outcome == outcome).count();
        let new_best = records.iter().filter(|r| r.new_best).count();
        out.push_str("# Candidate funnel\n");
        out.push_str(&format!(
            "{} proposals: {} evaluated, {} deduped, {} skipped (budget), {} failed; \
             {} became the incumbent\n\n",
            records.len(),
            count("evaluated"),
            count("deduped"),
            count("skipped"),
            count("failed"),
            new_best
        ));
    }

    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        if let Event::Counters { deltas, .. } = e {
            for (name, v) in deltas {
                *totals.entry(name).or_insert(0) += v;
            }
        }
    }
    let caches: Vec<String> = ["point_cache/", "layer_cache/", "disk_cache/"]
        .iter()
        .filter_map(|cache| {
            let sum = |kind: &str| -> u64 {
                totals
                    .iter()
                    .filter(|(k, _)| k.starts_with(cache) && k.ends_with(kind))
                    .map(|(_, v)| *v)
                    .sum()
            };
            let hits = sum("/hit");
            let total = hits + sum("/miss") + sum("/inflight_wait");
            (total > 0).then(|| {
                format!(
                    "{} {:.1}% of {total}",
                    cache.trim_end_matches('/'),
                    100.0 * hits as f64 / total as f64
                )
            })
        })
        .collect();
    if !caches.is_empty() {
        out.push_str("# Cache hit rates\n");
        out.push_str(&caches.join("; "));
        out.push('\n');
    }
    out
}

/// The `diff` report: union of span names with self-times from both
/// traces, then counter totals that differ.
fn diff_text(a: &[Event], b: &[Event]) -> String {
    let mut out = String::new();
    let agg = |events: &[Event]| -> BTreeMap<String, u64> {
        trace::SpanTree::build(events)
            .aggregate()
            .into_iter()
            .map(|s| (s.name, s.self_us))
            .collect()
    };
    let (sa, sb) = (agg(a), agg(b));
    let names: std::collections::BTreeSet<&String> = sa.keys().chain(sb.keys()).collect();
    if !names.is_empty() {
        out.push_str("# Span self-time (ms)\n");
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>12}\n",
            "name", "a", "b", "b-a"
        ));
        for name in names {
            let (va, vb) = (
                sa.get(name).copied().unwrap_or(0),
                sb.get(name).copied().unwrap_or(0),
            );
            out.push_str(&format!(
                "{:<28} {:>12} {:>12} {:>12}\n",
                name,
                fmt_ms(va),
                fmt_ms(vb),
                format!("{:+.3}", (vb as f64 - va as f64) / 1e3)
            ));
        }
        out.push('\n');
    }
    let counters = |events: &[Event]| -> BTreeMap<String, u64> {
        let mut totals = BTreeMap::new();
        for e in events {
            if let Event::Counters { deltas, .. } = e {
                for (name, v) in deltas {
                    *totals.entry(name.clone()).or_insert(0) += v;
                }
            }
        }
        totals
    };
    let (ca, cb) = (counters(a), counters(b));
    let changed: Vec<String> = ca
        .keys()
        .chain(cb.keys())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .filter_map(|name| {
            let (va, vb) = (
                ca.get(name).copied().unwrap_or(0),
                cb.get(name).copied().unwrap_or(0),
            );
            (va != vb).then(|| format!("{name}: {va} -> {vb}"))
        })
        .collect();
    if !changed.is_empty() {
        out.push_str("# Counters that differ\n");
        for line in changed {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = argv
        .first()
        .map(String::as_str)
        .unwrap_or_else(|| usage_exit());
    match command {
        "summary" => {
            let path = argv.get(1).unwrap_or_else(|| usage_exit());
            print!("{}", summary_text(&load(path)));
        }
        "why" => {
            let path = argv.get(1).unwrap_or_else(|| usage_exit());
            let target = match parse_target(argv.get(2).map(String::as_str)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let events = load(path);
            let records = trace::provenance_records(&events);
            match trace::why_chain(&records, target.as_deref()) {
                Ok(chain) => print!("{}", trace::render_why(&chain)),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        "flamegraph" => {
            let path = argv.get(1).unwrap_or_else(|| usage_exit());
            print!("{}", export::flamegraph(&load(path)));
        }
        "chrome" => {
            let path = argv.get(1).unwrap_or_else(|| usage_exit());
            let text = export::chrome_trace(&load(path));
            // Self-validate: a malformed export must never reach a
            // viewer (and CI leans on this check).
            if let Err(e) = json::parse(&text) {
                eprintln!(
                    "{path}: internal error: chrome export is not valid JSON: {}",
                    e.message
                );
                std::process::exit(1);
            }
            println!("{text}");
        }
        "diff" => {
            let (a, b) = match (argv.get(1), argv.get(2)) {
                (Some(a), Some(b)) => (a, b),
                _ => usage_exit(),
            };
            print!("{}", diff_text(&load(a), &load(b)));
        }
        _ => usage_exit(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edse_telemetry::ProvenanceRecord;

    #[test]
    fn targets_parse_as_best_or_points() {
        assert_eq!(parse_target(None).unwrap(), None);
        assert_eq!(parse_target(Some("best")).unwrap(), None);
        assert_eq!(parse_target(Some("3,1,2")).unwrap(), Some(vec![3, 1, 2]));
        assert_eq!(
            parse_target(Some("[3, 1, 2]")).unwrap(),
            Some(vec![3, 1, 2])
        );
        assert!(parse_target(Some("worst")).is_err());
        assert!(parse_target(Some("")).is_err());
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Meta {
                t_us: 0,
                schema: "edse-trace/v2".into(),
            },
            Event::SpanEnter {
                name: "dse/run".into(),
                t_us: 0,
                id: 1,
                parent: 0,
            },
            Event::SpanEnter {
                name: "eval/batch".into(),
                t_us: 10,
                id: 2,
                parent: 1,
            },
            Event::SpanExit {
                name: "eval/batch".into(),
                t_us: 40,
                id: 2,
                elapsed_us: 30,
            },
            Event::Provenance {
                t_us: 45,
                record: ProvenanceRecord {
                    technique: "explainable".into(),
                    point: vec![1, 2],
                    outcome: "evaluated".into(),
                    new_best: true,
                    ..ProvenanceRecord::default()
                },
            },
            Event::Counters {
                t_us: 50,
                deltas: vec![
                    ("point_cache/s0/hit".into(), 3),
                    ("point_cache/s0/miss".into(), 1),
                ],
            },
            Event::SpanExit {
                name: "dse/run".into(),
                t_us: 100,
                id: 1,
                elapsed_us: 100,
            },
        ]
    }

    #[test]
    fn summary_reports_spans_funnel_and_caches() {
        let text = summary_text(&sample_events());
        assert!(text.contains("schema edse-trace/v2"), "{text}");
        assert!(text.contains("dse/run"), "{text}");
        assert!(text.contains("1 proposals: 1 evaluated"), "{text}");
        assert!(text.contains("1 became the incumbent"), "{text}");
        assert!(text.contains("point_cache 75.0% of 4"), "{text}");
    }

    #[test]
    fn diff_shows_span_and_counter_deltas() {
        let a = sample_events();
        let mut b = sample_events();
        if let Event::Counters { deltas, .. } = &mut b[5] {
            deltas[0].1 = 5;
        }
        let text = diff_text(&a, &b);
        assert!(text.contains("point_cache/s0/hit: 3 -> 5"), "{text}");
        assert!(text.contains("dse/run"), "{text}");
        // Identical traces diff to no counter section.
        assert!(!diff_text(&a, &a).contains("Counters that differ"));
    }
}
