//! Fig. 9 — Final latency of the codesigns obtained by every DSE technique
//! for every model after the static exploration budget (paper: 2500
//! iterations). Fixed-dataflow settings for all techniques plus the
//! codesign settings for random search, HyperMapper 2.0 and
//! Explainable-DSE.
//!
//! Usage: `fig09_static_dse [--full] [--iters N] [--trials N] [--models a,b] [--seed N]
//! [--trace-out t.jsonl] [--verbose] [--json PATH]`

use bench::{
    constraints_for, latency_cell, print_table, run_technique, BenchArgs, BenchReport, MapperKind,
    TechniqueKind,
};
use edse_telemetry::Level;
use workloads::zoo;

fn main() {
    let args = BenchArgs::parse(2500);
    let telemetry = args.telemetry();
    let session = args.session_opts(&telemetry);
    let models = args.models_or(&telemetry, zoo::all_models());
    println!(
        "Fig. 9: best feasible latency (ms) after {} evaluations ({} mapping trials\n\
         per layer for black-box codesign)\n",
        args.spec.budget, args.spec.map_trials
    );

    let settings: Vec<(TechniqueKind, MapperKind, String)> = {
        let mut v: Vec<(TechniqueKind, MapperKind, String)> = TechniqueKind::ALL
            .iter()
            .map(|k| {
                (
                    *k,
                    MapperKind::FixedDataflow,
                    format!("{}-FixDF", k.label()),
                )
            })
            .collect();
        for k in [TechniqueKind::Random, TechniqueKind::HyperMapper] {
            v.push((
                k,
                MapperKind::Random(args.spec.map_trials),
                format!("{}-Codesign", k.label()),
            ));
        }
        v.push((
            TechniqueKind::Explainable,
            MapperKind::Linear(args.spec.map_trials),
            "Explainable-DSE-Codesign".into(),
        ));
        v
    };

    let mut headers: Vec<String> = vec!["technique".into()];
    headers.extend(models.iter().map(|m| m.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut report = BenchReport::new("fig09_static_dse", &args);
    let mut rows = Vec::new();
    for (kind, mapper, label) in &settings {
        let mut row = vec![label.clone()];
        for model in &models {
            let constraints = constraints_for(std::slice::from_ref(model));
            let trace = run_technique(
                *kind,
                *mapper,
                vec![model.clone()],
                args.spec.budget,
                args.spec.seed,
                &telemetry,
                &session,
            );
            report.push_trace(&format!("{label}/{}", model.name()), &trace);
            row.push(latency_cell(&trace, &constraints));
            telemetry.log(
                Level::Info,
                &format!(
                    "[{label} / {}] best={} evals={} {:.1}s",
                    model.name(),
                    row.last().unwrap(),
                    trace.evaluations(),
                    trace.wall_seconds
                ),
            );
        }
        rows.push(row);
    }
    telemetry.flush();
    print_table(&header_refs, &rows);
    println!(
        "\n'-' = no design met all constraints; '-*' = not even area/power were met.\n\
         paper shape: Explainable-DSE codesigns reach ~6x lower latency on average\n\
         than the best non-explainable technique."
    );
    report.write_if_requested(&args);
}
