//! Fig. 10 — Search time (bars) and designs evaluated (triangles) per DSE
//! technique, for the fixed-dataflow and codesign settings. The paper's
//! headline: Explainable-DSE evaluates ~59 (fixed) / ~54 (codesign) designs
//! where black-box techniques spend the full 2500, cutting search time by
//! 53x / 103x on average.
//!
//! Usage: `fig10_search_time [--full] [--iters N] [--trials N] [--models a,b]
//! [--json PATH]`

use bench::{
    print_table, run_explainable_detailed, run_technique, BenchArgs, BenchReport, MapperKind,
    TechniqueKind,
};
use edse_telemetry::json::Json;
use workloads::zoo;

fn main() {
    let args = BenchArgs::parse(2500);
    let telemetry = args.telemetry();
    let session = args.session_opts(&telemetry);
    let default = vec![zoo::resnet18(), zoo::efficientnet_b0(), zoo::transformer()];
    let models = args.models_or(&telemetry, default);

    println!(
        "Fig. 10: exploration cost per technique (budget {} evaluations)\n",
        args.spec.budget
    );

    let settings = [
        (TechniqueKind::Random, MapperKind::FixedDataflow),
        (TechniqueKind::Bayesian, MapperKind::FixedDataflow),
        (TechniqueKind::HyperMapper, MapperKind::FixedDataflow),
        (TechniqueKind::Rl, MapperKind::FixedDataflow),
        (TechniqueKind::Explainable, MapperKind::FixedDataflow),
        (
            TechniqueKind::Random,
            MapperKind::Random(args.spec.map_trials),
        ),
        (
            TechniqueKind::HyperMapper,
            MapperKind::Random(args.spec.map_trials),
        ),
        (
            TechniqueKind::Explainable,
            MapperKind::Linear(args.spec.map_trials),
        ),
    ];

    let mut report = BenchReport::new("fig10_search_time", &args);
    for model in &models {
        println!("== {} ==", model.name());
        let mut rows = Vec::new();
        let mut explainable_seconds: Option<f64> = None;
        let mut blackbox_seconds: Vec<f64> = Vec::new();
        for (kind, mapper) in settings {
            let (trace, converged) = if kind == TechniqueKind::Explainable {
                run_explainable_detailed(
                    mapper,
                    vec![model.clone()],
                    args.spec.budget,
                    args.spec.seed,
                    &telemetry,
                    &session,
                )
            } else {
                let t = run_technique(
                    kind,
                    mapper,
                    vec![model.clone()],
                    args.spec.budget,
                    args.spec.seed,
                    &telemetry,
                    &session,
                );
                (t, vec![])
            };
            if kind == TechniqueKind::Explainable {
                explainable_seconds.get_or_insert(trace.wall_seconds.max(1e-3));
            } else {
                blackbox_seconds.push(trace.wall_seconds);
            }
            // The JSON report pins designs-evaluated, not seconds: the
            // paper's search-time claim is a proxy for evaluation counts,
            // and wall-clock is excluded from reports by policy.
            report.push_trace(
                &format!("{}{}/{}", kind.label(), mapper.suffix(), model.name()),
                &trace,
            );
            if kind == TechniqueKind::Explainable {
                if let Some(first) = converged.first() {
                    report.metric(
                        &format!("converged_at{}/{}", mapper.suffix(), model.name()),
                        Json::Num(*first as f64),
                    );
                }
            }
            let evals = match converged.first() {
                Some(first) => format!("{} (converged at {first})", trace.evaluations()),
                None => trace.evaluations().to_string(),
            };
            rows.push(vec![
                format!("{}{}", kind.label(), mapper.suffix()),
                evals,
                format!("{:.2}", trace.wall_seconds),
                trace
                    .best_feasible()
                    .map(|s| format!("{:.2}", s.objective))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        print_table(
            &["technique", "designs evaluated", "time (s)", "best (ms)"],
            &rows,
        );
        if let Some(es) = explainable_seconds {
            let avg: f64 =
                blackbox_seconds.iter().sum::<f64>() / blackbox_seconds.len().max(1) as f64;
            println!(
                "search-time reduction vs mean black-box: {:.0}x\n",
                avg / es
            );
        }
    }
    println!(
        "paper shape: tens of designs for Explainable-DSE vs the full budget for\n\
         black-box techniques; 53x (fixed) and 103x (codesign) mean time reduction."
    );
    report.write_if_requested(&args);
}
