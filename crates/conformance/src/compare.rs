//! Tolerance-aware structural comparison of JSON documents.
//!
//! # Float-tolerance policy
//!
//! The comparator is **exact for everything that is exact in the model**
//! and tolerant only where floating-point serialization could wobble:
//!
//! * strings, booleans, `null`, and object/array *shape* — exact;
//! * **integral numbers** (both sides have zero fractional part and
//!   magnitude below 2^53 — counts, iteration indices, ordinal positions,
//!   seeds) — exact; a count that drifts by 1 is a real regression, never
//!   rounding;
//! * **non-integral numbers** (objectives in ms, feasibility rates, areas,
//!   rates) — equal within `rel_eps` *relative* error, with `abs_eps`
//!   absolute slack for values near zero. The default `rel_eps = 1e-9` is
//!   far looser than f64 round-trip noise (the serializer emits shortest
//!   round-trip forms, so fixtures normally match bit-for-bit) yet far
//!   tighter than any genuine modeling change, so a tolerance failure
//!   always means behavior drifted.
//!
//! Every mismatch carries the JSON path of the offending value (e.g.
//! `traces[2].best_objective`), so a golden failure names the exact metric
//! that moved.

use edse_telemetry::json::Json;

/// Numeric comparison slack (see the module docs for the policy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Maximum relative error for non-integral numbers.
    pub rel_eps: f64,
    /// Absolute slack for non-integral numbers near zero.
    pub abs_eps: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            rel_eps: 1e-9,
            abs_eps: 1e-12,
        }
    }
}

impl Tolerance {
    /// Whether two numbers are equal under this policy.
    pub fn num_eq(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true; // covers equal integers, zeros, and infinities
        }
        if a.is_nan() || b.is_nan() {
            return false;
        }
        let integral =
            |v: f64| v.is_finite() && v == v.trunc() && v.abs() < 9_007_199_254_740_992.0;
        if integral(a) && integral(b) {
            return false; // integers/ordinals compare exactly
        }
        let diff = (a - b).abs();
        diff <= self.abs_eps || diff <= self.rel_eps * a.abs().max(b.abs())
    }
}

/// One divergence between an expected and an actual document.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// JSON path of the offending value, e.g. `traces[2].best_objective`.
    pub path: String,
    /// The expected value (or shape) at that path, rendered as JSON.
    pub expected: String,
    /// The actual value (or shape) at that path, rendered as JSON.
    pub actual: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: expected {}, got {}",
            self.path, self.expected, self.actual
        )
    }
}

/// Compares `actual` against `expected`, returning every divergence with
/// its JSON path. An empty result means the documents conform.
pub fn diff(expected: &Json, actual: &Json, tol: &Tolerance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    walk(expected, actual, tol, "", &mut out);
    out
}

fn push(out: &mut Vec<Mismatch>, path: &str, expected: &Json, actual: &Json) {
    out.push(Mismatch {
        path: if path.is_empty() {
            "(root)".to_string()
        } else {
            path.to_string()
        },
        expected: expected.to_line(),
        actual: actual.to_line(),
    });
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn walk(expected: &Json, actual: &Json, tol: &Tolerance, path: &str, out: &mut Vec<Mismatch>) {
    match (expected, actual) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(a), Json::Bool(b)) if a == b => {}
        (Json::Str(a), Json::Str(b)) if a == b => {}
        (Json::Num(a), Json::Num(b)) => {
            if !tol.num_eq(*a, *b) {
                push(out, path, expected, actual);
            }
        }
        (Json::Arr(a), Json::Arr(b)) => {
            if a.len() != b.len() {
                out.push(Mismatch {
                    path: format!("{}.length", if path.is_empty() { "(root)" } else { path }),
                    expected: a.len().to_string(),
                    actual: b.len().to_string(),
                });
            }
            for (i, (ea, eb)) in a.iter().zip(b).enumerate() {
                walk(ea, eb, tol, &format!("{path}[{i}]"), out);
            }
        }
        (Json::Obj(a), Json::Obj(b)) => {
            for (k, va) in a {
                match b.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => walk(va, vb, tol, &join(path, k), out),
                    None => out.push(Mismatch {
                        path: join(path, k),
                        expected: va.to_line(),
                        actual: "(missing)".to_string(),
                    }),
                }
            }
            for (k, vb) in b {
                if !a.iter().any(|(ka, _)| ka == k) {
                    out.push(Mismatch {
                        path: join(path, k),
                        expected: "(absent)".to_string(),
                        actual: vb.to_line(),
                    });
                }
            }
        }
        _ => push(out, path, expected, actual),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_have_no_mismatches() {
        let doc = Json::obj(vec![
            ("count", Json::Num(3.0)),
            ("rate", Json::Num(0.123456789)),
            ("items", Json::Arr(vec![Json::Str("a".into()), Json::Null])),
        ]);
        assert!(diff(&doc, &doc.clone(), &Tolerance::default()).is_empty());
    }

    #[test]
    fn integral_numbers_compare_exactly() {
        let tol = Tolerance::default();
        assert!(!tol.num_eq(54.0, 55.0), "count drift is never tolerated");
        assert!(tol.num_eq(54.0, 54.0));
    }

    #[test]
    fn floats_get_relative_epsilon() {
        let tol = Tolerance::default();
        assert!(tol.num_eq(1.25, 1.25 * (1.0 + 1e-12)));
        assert!(!tol.num_eq(1.25, 1.25 * (1.0 + 1e-6)));
        assert!(tol.num_eq(0.0, 1e-13), "absolute slack near zero");
    }

    #[test]
    fn mismatch_paths_name_the_metric() {
        let expected = Json::obj(vec![(
            "traces",
            Json::Arr(vec![Json::obj(vec![("best_objective", Json::Num(3.0))])]),
        )]);
        let actual = Json::obj(vec![(
            "traces",
            Json::Arr(vec![Json::obj(vec![("best_objective", Json::Num(4.0))])]),
        )]);
        let d = diff(&expected, &actual, &Tolerance::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "traces[0].best_objective");
    }

    #[test]
    fn missing_and_extra_keys_are_reported() {
        let expected = Json::obj(vec![("kept", Json::Num(1.0)), ("gone", Json::Num(2.0))]);
        let actual = Json::obj(vec![("kept", Json::Num(1.0)), ("new", Json::Num(3.0))]);
        let d = diff(&expected, &actual, &Tolerance::default());
        let paths: Vec<&str> = d.iter().map(|m| m.path.as_str()).collect();
        assert!(paths.contains(&"gone"));
        assert!(paths.contains(&"new"));
    }

    #[test]
    fn type_changes_are_mismatches() {
        let d = diff(
            &Json::Num(1.0),
            &Json::Str("1".into()),
            &Tolerance::default(),
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].path, "(root)");
    }
}
