//! Golden-fixture storage and checking.
//!
//! Fixtures live in `crates/conformance/golden/*.json`, pretty-printed so
//! review diffs stay readable. [`check_golden`] compares a freshly
//! generated document against its fixture with the default
//! [`Tolerance`]; on drift it panics with every
//! mismatch, each naming the JSON path of the metric that moved.
//!
//! Intentional behavior changes regenerate fixtures with
//! `UPDATE_GOLDEN=1 cargo test -p conformance` — review the diff, then
//! commit it. Regeneration is refused when `CI` is set: goldens must only
//! change through a reviewed commit, never silently on a build machine.

use crate::compare::{diff, Tolerance};
use edse_telemetry::json::{self, Json};
use std::path::PathBuf;

/// The committed fixture directory (`crates/conformance/golden`).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Pretty-prints a JSON document (2-space indent, insertion order kept) —
/// the on-disk fixture format.
pub fn pretty(doc: &Json) -> String {
    let mut out = String::new();
    render(doc, 0, &mut out);
    out.push('\n');
    out
}

fn render(doc: &Json, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth + 1);
    match doc {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                render(item, depth + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(depth));
            out.push(']');
        }
        Json::Obj(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(&Json::Str(k.clone()).to_line());
                out.push_str(": ");
                render(v, depth + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(depth));
            out.push('}');
        }
        other => out.push_str(&other.to_line()),
    }
}

/// Compares `actual` against the committed fixture `golden/<name>.json`.
///
/// Reads the update/CI switches from the environment (`UPDATE_GOLDEN`,
/// `CI`); see [`check_golden_with`] for the explicit-parameter form the
/// tests of this crate use.
///
/// # Panics
///
/// Panics when the fixture is missing, unparseable, or does not match —
/// and when regeneration is requested under CI.
pub fn check_golden(name: &str, actual: &Json) {
    check_golden_with(
        name,
        actual,
        std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0"),
        std::env::var("CI").is_ok_and(|v| !v.is_empty() && v != "0"),
    );
}

/// [`check_golden`] with the environment switches passed explicitly:
/// `update` regenerates the fixture instead of comparing; `ci` marks a CI
/// build, under which regeneration is refused.
///
/// # Panics
///
/// See [`check_golden`].
pub fn check_golden_with(name: &str, actual: &Json, update: bool, ci: bool) {
    let path = golden_dir().join(format!("{name}.json"));
    if update {
        assert!(
            !ci,
            "UPDATE_GOLDEN is set under CI: golden fixtures must only change \
             through a reviewed commit; run the update locally instead"
        );
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, pretty(actual)).expect("write golden fixture");
        eprintln!("regenerated golden fixture {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); every fixture is committed — if \
             this is a new scenario, regenerate with \
             `UPDATE_GOLDEN=1 cargo test -p conformance` and commit the file",
            path.display()
        )
    });
    let expected = json::parse(&text)
        .unwrap_or_else(|e| panic!("golden fixture {} is not valid JSON: {e:?}", path.display()));
    let mismatches = diff(&expected, actual, &Tolerance::default());
    if !mismatches.is_empty() {
        let listing: Vec<String> = mismatches.iter().map(|m| format!("  {m}")).collect();
        panic!(
            "golden fixture {name} drifted ({} mismatch(es)):\n{}\n\
             If this change is intentional, regenerate with \
             `UPDATE_GOLDEN=1 cargo test -p conformance` and commit the diff.",
            mismatches.len(),
            listing.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_parses_back_identically() {
        let doc = Json::obj(vec![
            ("name", Json::Str("x".into())),
            ("values", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("nested", Json::obj(vec![("ok", Json::Bool(true))])),
        ]);
        let text = pretty(&doc);
        assert_eq!(json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn update_under_ci_is_refused() {
        let doc = Json::Num(1.0);
        let err = std::panic::catch_unwind(|| {
            check_golden_with("never-written", &doc, true, true);
        })
        .expect_err("must refuse");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("UPDATE_GOLDEN is set under CI"), "{msg}");
        assert!(!golden_dir().join("never-written.json").exists());
    }
}
