#![warn(missing_docs)]
//! Paper-fidelity conformance harness.
//!
//! This crate pins the reproduction's observable behavior three ways:
//!
//! * **Golden fixtures** ([`golden`], `golden/*.json`) — small,
//!   deterministic bench scenarios ([`scenarios`]) whose machine-readable
//!   reports are committed to the repository. `cargo test -p conformance`
//!   regenerates every scenario and compares it against its fixture with
//!   the tolerance-aware comparator ([`compare`]); a drift in any pinned
//!   metric fails with a diff naming the metric. Regenerate intentionally
//!   with `UPDATE_GOLDEN=1 cargo test -p conformance` (refused under CI).
//! * **Differential oracles** (`tests/oracles.rs`) — pairs of code paths
//!   the codebase promises are equivalent: serial vs parallel
//!   [`edse_core::EvalEngine`] batches, straight-through vs
//!   killed-and-resumed [`edse_core::SearchSession`] runs, cold vs warm
//!   runs over a persistent [`edse_core::DiskCache`] (bit-identical, with
//!   a ≥ 99% disk hit rate when warm), and the evaluator's cached fast
//!   path vs the straight-line [`reference::NaiveReferenceEvaluator`].
//! * **Paper-bound assertions** (`tests/paper_bounds.rs`) — directional
//!   claims of the paper that must hold at toy scale: Explainable-DSE
//!   reaches the throughput target in fewer iterations than every
//!   black-box baseline (Fig. 4/11).

pub mod compare;
pub mod golden;
pub mod reference;
pub mod scenarios;

pub use compare::{diff, Mismatch, Tolerance};
pub use golden::{check_golden, golden_dir, pretty};
pub use reference::NaiveReferenceEvaluator;
pub use scenarios::{all_scenarios, iterations_to_target, Scenario};
