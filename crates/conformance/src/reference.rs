//! A straight-line reference implementation of the codesign cost model.
//!
//! [`edse_core::CodesignEvaluator`] earns its speed from sharded memo
//! tables, batch fan-out, and a fault boundary. This module reimplements
//! the *arithmetic* of an evaluation with none of that machinery: decode
//! the point, price area and power, map every unique layer of every model
//! in declaration order, and accumulate latency/energy in exactly the
//! order the fast path does. Because f64 addition is order-sensitive, the
//! matching order makes the two paths **bit-identical**, which is what the
//! differential oracle in `tests/oracles.rs` asserts — any divergence
//! means a cache, batching, or fault-path change leaked into results.

use edse_core::cost::{Constraint, Evaluation, LayerEval};
use edse_core::space::{decode_edge_point, DesignPoint, DesignSpace};
use energy_area::Tech;
use mapper::MappingOptimizer;
use workloads::DnnModel;

/// The cacheless, boundary-free reference evaluator.
pub struct NaiveReferenceEvaluator<M> {
    space: DesignSpace,
    constraints: Vec<Constraint>,
    models: Vec<DnnModel>,
    tech: Tech,
    mapper: M,
}

impl<M: MappingOptimizer> NaiveReferenceEvaluator<M> {
    /// Builds the reference with the same constraint list construction as
    /// [`edse_core::CodesignEvaluator::new`]: area < 75 mm², power < 4 W,
    /// one latency ceiling per model, at 45 nm.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(space: DesignSpace, models: Vec<DnnModel>, mapper: M) -> Self {
        assert!(!models.is_empty(), "need at least one target workload");
        let mut constraints = vec![
            Constraint::new("area_mm2", 75.0),
            Constraint::new("power_w", 4.0),
        ];
        for m in &models {
            constraints.push(Constraint::new(
                format!("latency_ms:{}", m.name()),
                m.target().latency_ceiling_ms(),
            ));
        }
        NaiveReferenceEvaluator {
            space,
            constraints,
            models,
            tech: Tech::n45(),
            mapper,
        }
    }

    /// The constraint list, aligned with `Evaluation::constraint_values`.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The design space the reference decodes against.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Evaluates one point from first principles: no memo tables, no
    /// batching, no panic guard — every mapper call runs fresh.
    pub fn evaluate(&self, point: &DesignPoint) -> Evaluation {
        let cfg = decode_edge_point(&self.space, point);
        let area = cfg.area_mm2(&self.tech);
        let power = cfg.max_power_w(&self.tech);

        let mut layers = Vec::new();
        let mut per_model_latency = Vec::with_capacity(self.models.len());
        let mut energy_mj = 0.0;
        let mut mappable = true;
        for model in &self.models {
            let mut model_latency = 0.0f64;
            for u in model.unique_shapes() {
                let mapped = self.mapper.optimize(&u.shape, &cfg);
                let diagnostic = if mapped.is_none() {
                    self.mapper.diagnose(&u.shape, &cfg)
                } else {
                    None
                };
                mappable &= mapped.is_some();
                let profile = mapped.map(|m| m.profile).or(diagnostic);
                let latency_ms = profile
                    .map(|p| p.latency_ms(cfg.freq_mhz) * u.count as f64)
                    .unwrap_or(f64::INFINITY);
                if let Some(m) = &mapped {
                    energy_mj += m.profile.energy_mj() * u.count as f64;
                }
                model_latency += latency_ms;
                layers.push(LayerEval {
                    name: u.name,
                    model: model.name().to_string(),
                    count: u.count,
                    profile,
                    mappable: mapped.is_some(),
                    latency_ms,
                });
            }
            per_model_latency.push(model_latency);
        }

        let objective: f64 = per_model_latency.iter().sum();
        let mut constraint_values = vec![area, power];
        constraint_values.extend(per_model_latency);
        Evaluation {
            objective,
            mappable,
            constraint_values,
            layers,
            area_mm2: area,
            power_w: power,
            energy_mj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edse_core::space::edge_space;
    use mapper::FixedMapper;
    use workloads::zoo;

    #[test]
    fn reference_constraints_match_the_fast_path() {
        use edse_core::Evaluator as _;
        let models = vec![zoo::resnet18(), zoo::bert_base()];
        let reference = NaiveReferenceEvaluator::new(edge_space(), models.clone(), FixedMapper);
        let fast = edse_core::CodesignEvaluator::new(edge_space(), models, FixedMapper);
        assert_eq!(reference.constraints(), fast.constraints());
    }
}
