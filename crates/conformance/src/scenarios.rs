//! The pinned bench scenarios behind the golden fixtures.
//!
//! Each scenario is a deterministic, seconds-scale exploration — every
//! technique of the paper's comparison on the Fig. 4 toy setting
//! ([`bench::toy`]), plus two short full-edge-space runs — reported
//! through the same [`bench::BenchReport`] machinery the figure binaries
//! use for `--json`. The serialized report (config, per-sample series,
//! derived summary metrics) is what `golden/*.json` pins: a change in the
//! cost model, a search technique, the acquisition order, or the report
//! schema shows up as a fixture diff naming the exact metric that moved.

use baselines::{
    BaselineSession, BayesianOpt, ConfuciuxRl, DseTechnique, GeneticAlgorithm, GridSearch,
    HyperMapperLike, RandomSearch, SimulatedAnnealing,
};
use bench::toy::{single_layer_model, toy_space};
use bench::{BenchArgs, BenchReport, TechniqueKind};
use edse_core::bottleneck::dnn_latency_model;
use edse_core::cost::Trace;
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CodesignEvaluator, EvalEngine, Evaluator};
use edse_core::space::edge_space;
use edse_core::SearchSession;
use edse_telemetry::json::Json;
use mapper::FixedMapper;
use workloads::zoo;

/// The toy setting's throughput floor as a latency target in ms
/// (40 FPS ⇒ 25 ms), the "target" of iterations-to-target metrics.
pub const TOY_TARGET_MS: f64 = 25.0;

/// Evaluation budget of every toy scenario.
pub const TOY_BUDGET: usize = 30;

/// Seed of every pinned scenario.
pub const SCENARIO_SEED: u64 = 7;

/// 1-based index of the first feasible sample at or below `target`, if the
/// trace ever got there.
pub fn iterations_to_target(trace: &Trace, target: f64) -> Option<usize> {
    trace
        .samples
        .iter()
        .position(|s| s.feasible && s.objective <= target)
        .map(|i| i + 1)
}

/// Runs one technique on the toy setting (serial engine, fixed dataflow)
/// and returns its trace.
pub fn run_toy(kind: TechniqueKind, budget: usize, seed: u64) -> Trace {
    let evaluator = CodesignEvaluator::new(toy_space(), vec![single_layer_model()], FixedMapper)
        .with_engine(EvalEngine::serial());
    run_with(kind, &evaluator, budget, seed)
}

/// Runs one technique against an arbitrary evaluator (the scenarios' and
/// paper-bound tests' shared driver; mirrors `bench::run_technique`
/// without the telemetry/checkpoint plumbing the fixtures don't pin).
pub fn run_with<E: Evaluator>(
    kind: TechniqueKind,
    evaluator: E,
    budget: usize,
    seed: u64,
) -> Trace {
    match kind {
        TechniqueKind::Explainable => SearchSession::new(
            dnn_latency_model(),
            DseConfig {
                budget,
                seed,
                ..DseConfig::default()
            },
        )
        .evaluator(&evaluator)
        .run(evaluator.space().minimum_point())
        .into_trace(),
        other => {
            let mut technique: Box<dyn DseTechnique> = match other {
                TechniqueKind::Grid => Box::new(GridSearch),
                TechniqueKind::Random => Box::new(RandomSearch::new(seed)),
                TechniqueKind::Annealing => Box::new(SimulatedAnnealing::new(seed)),
                TechniqueKind::Genetic => Box::new(GeneticAlgorithm::new(8, seed)),
                TechniqueKind::Bayesian => Box::new(BayesianOpt::new(seed)),
                TechniqueKind::HyperMapper => Box::new(HyperMapperLike::new(seed)),
                TechniqueKind::Rl => Box::new(ConfuciuxRl::new(seed)),
                TechniqueKind::Explainable => unreachable!("handled above"),
            };
            BaselineSession::new(technique.as_mut()).run(&evaluator, budget)
        }
    }
}

/// What a [`Scenario`] runs.
enum Runner {
    /// One technique on the toy setting.
    Toy(TechniqueKind),
    /// One technique on the full edge space against ResNet-18.
    Edge(TechniqueKind),
}

/// One pinned scenario: a name (also the fixture file stem) and the run
/// that regenerates its report.
pub struct Scenario {
    /// Fixture name — the report is committed as `golden/<name>.json`.
    pub name: &'static str,
    runner: Runner,
}

impl Scenario {
    /// Regenerates this scenario's report document.
    pub fn run(&self) -> Json {
        match self.runner {
            Runner::Toy(kind) => toy_report(self.name, kind),
            Runner::Edge(kind) => edge_report(self.name, kind),
        }
    }
}

fn scenario_args(budget: usize) -> BenchArgs {
    BenchArgs::parse_from(
        &[
            "--iters",
            &budget.to_string(),
            "--seed",
            &SCENARIO_SEED.to_string(),
        ],
        budget,
    )
}

fn toy_report(name: &str, kind: TechniqueKind) -> Json {
    let args = scenario_args(TOY_BUDGET);
    let mut report = BenchReport::new(name, &args);
    let trace = run_toy(kind, args.spec.budget, args.spec.seed);
    report.push_trace("toy", &trace);
    report.metric(
        "iterations_to_target",
        iterations_to_target(&trace, TOY_TARGET_MS)
            .map(|n| Json::Num(n as f64))
            .unwrap_or(Json::Null),
    );
    report.to_json()
}

/// Evaluation budget of the edge-space scenarios (kept short: every point
/// maps all of ResNet-18's unique layers).
const EDGE_BUDGET: usize = 12;

fn edge_report(name: &str, kind: TechniqueKind) -> Json {
    let args = scenario_args(EDGE_BUDGET);
    let mut report = BenchReport::new(name, &args);
    let evaluator = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper)
        .with_engine(EvalEngine::serial());
    let trace = run_with(kind, &evaluator, args.spec.budget, args.spec.seed);
    report.push_trace("resnet18", &trace);
    report.metric(
        "unique_evaluations",
        Json::Num(evaluator.unique_evaluations() as f64),
    );
    report.to_json()
}

/// Every pinned scenario, in fixture order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "toy_explainable",
            runner: Runner::Toy(TechniqueKind::Explainable),
        },
        Scenario {
            name: "toy_grid",
            runner: Runner::Toy(TechniqueKind::Grid),
        },
        Scenario {
            name: "toy_random",
            runner: Runner::Toy(TechniqueKind::Random),
        },
        Scenario {
            name: "toy_annealing",
            runner: Runner::Toy(TechniqueKind::Annealing),
        },
        Scenario {
            name: "toy_genetic",
            runner: Runner::Toy(TechniqueKind::Genetic),
        },
        Scenario {
            name: "toy_bayesian",
            runner: Runner::Toy(TechniqueKind::Bayesian),
        },
        Scenario {
            name: "toy_hypermapper",
            runner: Runner::Toy(TechniqueKind::HyperMapper),
        },
        Scenario {
            name: "toy_rl",
            runner: Runner::Toy(TechniqueKind::Rl),
        },
        Scenario {
            name: "edge_explainable_resnet18",
            runner: Runner::Edge(TechniqueKind::Explainable),
        },
        Scenario {
            name: "edge_random_resnet18",
            runner: Runner::Edge(TechniqueKind::Random),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_unique() {
        let names: Vec<&str> = all_scenarios().iter().map(|s| s.name).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }

    #[test]
    fn toy_runs_are_deterministic() {
        let a = run_toy(TechniqueKind::Random, 10, SCENARIO_SEED);
        let b = run_toy(TechniqueKind::Random, 10, SCENARIO_SEED);
        assert_eq!(a.samples, b.samples);
    }
}
