//! Differential oracles: pairs of code paths the codebase promises are
//! equivalent, checked for bit-identical results.
//!
//! 1. Serial vs parallel [`EvalEngine`] batches (and whole searches).
//! 2. Straight-through vs killed-and-resumed sessions — both
//!    [`SearchSession`] and [`BaselineSession`].
//! 3. Cold vs warm runs over a persistent [`DiskCache`] — the identical
//!    search (explainable and every baseline technique) replayed against a
//!    warmed cache directory must be bit-identical to the cold run and
//!    answered almost entirely (≥ 99%) from disk.
//! 4. The evaluator's cached fast path vs the straight-line
//!    [`NaiveReferenceEvaluator`].

use accel_model::AcceleratorConfig;
use baselines::{
    BaselineSession, BayesianOpt, ConfuciuxRl, DseTechnique, GeneticAlgorithm, GridSearch,
    HyperMapperLike, RandomSearch, SimulatedAnnealing,
};
use conformance::NaiveReferenceEvaluator;
use edse_core::bottleneck::dnn_latency_model;
use edse_core::cost::{Constraint, Evaluation};
use edse_core::dse::{DseConfig, DseResult};
use edse_core::evaluate::{CacheSnapshot, CodesignEvaluator, EvalEngine, Evaluator};
use edse_core::fault::EvalFault;
use edse_core::space::{edge_space, DesignPoint, DesignSpace};
use edse_core::{DiskCache, JobSpec, SearchSession};
use edse_telemetry::Collector;
use mapper::FixedMapper;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use workloads::zoo;

fn edge_evaluator(engine: EvalEngine) -> CodesignEvaluator<FixedMapper> {
    CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper).with_engine(engine)
}

/// A deterministic spread of design points (splitmix-style walk over every
/// parameter's cardinality) — diverse without depending on any search.
fn spread_points(space: &DesignSpace, n: usize) -> Vec<DesignPoint> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            DesignPoint::new(
                space
                    .params()
                    .iter()
                    .map(|p| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((state >> 33) as usize) % p.len()
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Every `DseResult` field except the wall clock.
fn assert_results_identical(a: &DseResult, b: &DseResult) {
    assert_eq!(a.trace().samples, b.trace().samples);
    assert_eq!(a.attempts(), b.attempts());
    assert_eq!(a.best(), b.best());
    assert_eq!(a.converged_after(), b.converged_after());
    assert_eq!(a.termination(), b.termination());
}

// ---------------------------------------------------------------------------
// Oracle 1: serial vs parallel evaluation engine.
// ---------------------------------------------------------------------------

#[test]
fn serial_and_parallel_batches_are_bit_identical() {
    let serial = edge_evaluator(EvalEngine::serial());
    let parallel = edge_evaluator(EvalEngine::with_threads(4));
    let points = spread_points(serial.space(), 24);
    let a: Vec<Evaluation> = serial.evaluate_batch(&points);
    let b: Vec<Evaluation> = parallel.evaluate_batch(&points);
    assert_eq!(a, b);
    assert_eq!(serial.unique_evaluations(), parallel.unique_evaluations());
}

/// A 1-candidate batch over a many-layer workload: the engine's fan-out
/// unit is the layer mapping, so the parallel engine must both (a) return
/// results bit-identical to serial and (b) observably distribute the
/// per-layer jobs across its workers (per-thread pull counts in the
/// `engine/mapping` batch record sum to the unique layer count).
#[test]
fn single_candidate_multi_layer_batch_is_bit_identical_and_distributed() {
    use edse_telemetry::{Event, MemorySink};
    let serial = edge_evaluator(EvalEngine::serial());
    let sink = MemorySink::new();
    let collector = Collector::builder().sink(sink.clone()).build();
    let parallel = edge_evaluator(EvalEngine::with_threads(4)).with_telemetry(collector);
    let batch = vec![serial.space().minimum_point()];
    let a: Vec<Evaluation> = serial.evaluate_batch(&batch);
    let b: Vec<Evaluation> = parallel.evaluate_batch(&batch);
    assert_eq!(a, b);
    assert_eq!(serial.unique_evaluations(), parallel.unique_evaluations());

    let layers = zoo::resnet18().unique_shape_count() as u64;
    let mapping_records: Vec<_> = sink
        .events()
        .into_iter()
        .filter_map(|e| match e {
            Event::Batch { record, .. } if record.stage == "engine/mapping" => Some(record),
            _ => None,
        })
        .collect();
    assert_eq!(mapping_records.len(), 1, "one mapping fan-out phase");
    assert_eq!(mapping_records[0].items, layers);
    assert_eq!(
        mapping_records[0].per_thread.iter().sum::<u64>(),
        layers,
        "every layer job pulled exactly once"
    );
    assert_eq!(mapping_records[0].per_thread.len(), 4.min(layers as usize));
}

#[test]
fn serial_and_parallel_searches_are_bit_identical() {
    let config = DseConfig {
        budget: 40,
        seed: 11,
        ..DseConfig::default()
    };
    let serial_ev = edge_evaluator(EvalEngine::serial());
    let parallel_ev = edge_evaluator(EvalEngine::with_threads(4));
    let initial = serial_ev.space().minimum_point();
    let a = SearchSession::new(dnn_latency_model(), config.clone())
        .evaluator(&serial_ev)
        .run(initial.clone());
    let b = SearchSession::new(dnn_latency_model(), config)
        .evaluator(&parallel_ev)
        .run(initial);
    assert_results_identical(&a, &b);
}

// ---------------------------------------------------------------------------
// Oracle 2: straight-through vs killed-and-resumed sessions.
// ---------------------------------------------------------------------------

fn silence_expected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("simulated kill") {
                prev(info);
            }
        }));
    });
}

fn temp_snapshot_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "edse-conformance-{}-{tag}-{n}.json",
        std::process::id()
    ))
}

/// Wraps an evaluator and panics once `kill_after` evaluation requests
/// have been spent — a SIGKILL landing mid-search, as seen from inside
/// the process. All bookkeeping methods pass through.
struct KillSwitch<E> {
    inner: E,
    remaining: AtomicUsize,
}

impl<E> KillSwitch<E> {
    fn new(inner: E, kill_after: usize) -> Self {
        KillSwitch {
            inner,
            remaining: AtomicUsize::new(kill_after),
        }
    }

    fn spend(&self, n: usize) {
        let left = self.remaining.load(Ordering::Relaxed);
        if left < n {
            panic!("simulated kill");
        }
        self.remaining.store(left - n, Ordering::Relaxed);
    }
}

impl<E: Evaluator> Evaluator for KillSwitch<E> {
    fn evaluate(&self, point: &DesignPoint) -> Evaluation {
        self.spend(1);
        self.inner.evaluate(point)
    }

    fn evaluate_batch(&self, points: &[DesignPoint]) -> Vec<Evaluation> {
        self.spend(points.len());
        self.inner.evaluate_batch(points)
    }

    fn try_evaluate(&self, point: &DesignPoint) -> Result<Evaluation, EvalFault> {
        self.spend(1);
        self.inner.try_evaluate(point)
    }

    fn try_evaluate_batch(&self, points: &[DesignPoint]) -> Vec<Result<Evaluation, EvalFault>> {
        self.spend(points.len());
        self.inner.try_evaluate_batch(points)
    }

    fn space(&self) -> &DesignSpace {
        self.inner.space()
    }

    fn constraints(&self) -> &[Constraint] {
        self.inner.constraints()
    }

    fn unique_evaluations(&self) -> usize {
        self.inner.unique_evaluations()
    }

    fn decode(&self, point: &DesignPoint) -> AcceleratorConfig {
        self.inner.decode(point)
    }

    fn cache_snapshot(&self) -> CacheSnapshot {
        self.inner.cache_snapshot()
    }

    fn restore_caches(&self, snapshot: &CacheSnapshot) {
        self.inner.restore_caches(snapshot)
    }

    fn cache_stats(&self) -> edse_core::evaluate::CacheStats {
        self.inner.cache_stats()
    }
}

#[test]
fn killed_and_resumed_search_session_matches_straight_through() {
    silence_expected_panics();
    let config = DseConfig {
        budget: 40,
        seed: 2,
        ..DseConfig::default()
    };
    let reference_ev = edge_evaluator(EvalEngine::serial());
    let initial = reference_ev.space().minimum_point();
    let reference = SearchSession::new(dnn_latency_model(), config.clone())
        .evaluator(&reference_ev)
        .run(initial.clone());

    // Kill early, mid-run, and past the end (the latter degrades to
    // resuming a completed snapshot).
    for kill_after in [1usize, 9, 23, 10_000] {
        let path = temp_snapshot_path("search-kill");
        let killed_ev = KillSwitch::new(edge_evaluator(EvalEngine::serial()), kill_after);
        let killed = catch_unwind(AssertUnwindSafe(|| {
            SearchSession::new(dnn_latency_model(), config.clone())
                .evaluator(&killed_ev)
                .spec(&JobSpec {
                    checkpoint: Some(path.clone()),
                    checkpoint_every: 1,
                    ..JobSpec::default()
                })
                .run(initial.clone())
        }));
        let resumed_ev = edge_evaluator(EvalEngine::serial());
        let resumed = SearchSession::new(dnn_latency_model(), config.clone())
            .evaluator(&resumed_ev)
            .spec(&JobSpec {
                checkpoint: Some(path.clone()),
                checkpoint_every: 1,
                resume: true,
                ..JobSpec::default()
            })
            .run(initial.clone());
        assert_results_identical(&resumed, &reference);
        assert_eq!(
            resumed_ev.unique_evaluations(),
            reference_ev.unique_evaluations(),
            "kill_after={kill_after}"
        );
        if let Ok(completed) = killed {
            assert_results_identical(&completed, &reference);
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn killed_and_resumed_baseline_session_matches_straight_through() {
    silence_expected_panics();
    let budget = 25;
    let reference = {
        let mut technique = RandomSearch::new(13);
        BaselineSession::new(&mut technique).run(&edge_evaluator(EvalEngine::serial()), budget)
    };

    for kill_after in [3usize, 12, 10_000] {
        let path = temp_snapshot_path("baseline-kill");
        let killed_ev = KillSwitch::new(edge_evaluator(EvalEngine::serial()), kill_after);
        let killed = catch_unwind(AssertUnwindSafe(|| {
            let mut technique = RandomSearch::new(13);
            BaselineSession::new(&mut technique)
                .spec(&JobSpec {
                    checkpoint: Some(path.clone()),
                    checkpoint_every: 1,
                    ..JobSpec::default()
                })
                .run(&killed_ev, budget)
        }));
        let mut technique = RandomSearch::new(13);
        let resumed = BaselineSession::new(&mut technique)
            .spec(&JobSpec {
                checkpoint: Some(path.clone()),
                checkpoint_every: 1,
                resume: true,
                ..JobSpec::default()
            })
            .run(&edge_evaluator(EvalEngine::serial()), budget);
        assert_eq!(
            resumed.samples, reference.samples,
            "kill_after={kill_after}"
        );
        assert_eq!(resumed.technique, reference.technique);
        if let Ok(completed) = killed {
            assert_eq!(completed.samples, reference.samples);
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------------
// Oracle 3: cold vs warm runs over a persistent disk cache.
// ---------------------------------------------------------------------------

fn temp_cache_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "edse-conformance-cache-{}-{tag}-{n}",
        std::process::id()
    ))
}

/// The warm run's disk tier must have answered (almost) every layer-mapping
/// lookup; a single stray miss on a 100+-lookup run still passes, a cold
/// tier does not.
fn assert_warm(ev: &impl Evaluator, what: &str) {
    let disk = ev
        .cache_stats()
        .disk
        .unwrap_or_else(|| panic!("{what}: no disk tier attached"));
    let lookups = disk.hits + disk.misses;
    assert!(
        lookups > 0,
        "{what}: warm run never consulted the disk tier"
    );
    let rate = disk.hits as f64 / lookups as f64;
    assert!(
        rate >= 0.99,
        "{what}: warm disk hit rate {rate:.4} ({}/{lookups}) below 0.99",
        disk.hits
    );
}

/// An explainable search replayed against the cache directory its cold run
/// populated: bit-identical trace, and the mapper never runs again (the
/// disk tier answers ≥ 99% of layer lookups).
#[test]
fn warm_search_session_matches_the_cold_run_from_disk() {
    let config = DseConfig {
        budget: 40,
        seed: 5,
        ..DseConfig::default()
    };
    let dir = temp_cache_dir("search");
    let cold_ev = edge_evaluator(EvalEngine::serial())
        .with_disk_cache(Arc::new(DiskCache::open(&dir).expect("open cache")));
    let initial = cold_ev.space().minimum_point();
    let cold = SearchSession::new(dnn_latency_model(), config.clone())
        .evaluator(&cold_ev)
        .run(initial.clone());

    // A fresh process would reopen the directory: drop the cold evaluator
    // (flushing the index) and recover the store from disk alone.
    drop(cold_ev);
    let warm_ev = edge_evaluator(EvalEngine::serial())
        .with_disk_cache(Arc::new(DiskCache::open(&dir).expect("reopen cache")));
    let warm = SearchSession::new(dnn_latency_model(), config)
        .evaluator(&warm_ev)
        .run(initial);
    assert_results_identical(&cold, &warm);
    assert_warm(&warm_ev, "search session");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every baseline technique, cold then warm, all sharing one cache
/// directory: each warm replay is bit-identical and served from disk. The
/// techniques overlap heavily in the configs they visit, so the shared
/// store also exercises cross-technique reuse.
#[test]
fn warm_baseline_sessions_match_their_cold_runs_from_disk() {
    type TechniqueFactory = fn(u64) -> Box<dyn DseTechnique>;
    let budget = 10;
    let factories: Vec<(&str, TechniqueFactory)> = vec![
        ("grid", |_| Box::new(GridSearch)),
        ("random", |s| Box::new(RandomSearch::new(s))),
        ("annealing", |s| Box::new(SimulatedAnnealing::new(s))),
        ("genetic", |s| Box::new(GeneticAlgorithm::new(8, s))),
        ("bayesian", |s| Box::new(BayesianOpt::new(s))),
        ("hypermapper", |s| Box::new(HyperMapperLike::new(s))),
        ("rl", |s| Box::new(ConfuciuxRl::new(s))),
    ];
    let dir = temp_cache_dir("baselines");
    let mut cold_samples = Vec::new();
    for (name, make) in &factories {
        let ev = edge_evaluator(EvalEngine::serial())
            .with_disk_cache(Arc::new(DiskCache::open(&dir).expect("open cache")));
        let mut technique = make(7);
        let trace = BaselineSession::new(technique.as_mut()).run(&ev, budget);
        cold_samples.push((*name, trace.samples));
    }
    for ((name, make), (_, cold)) in factories.iter().zip(&cold_samples) {
        let ev = edge_evaluator(EvalEngine::serial())
            .with_disk_cache(Arc::new(DiskCache::open(&dir).expect("reopen cache")));
        let mut technique = make(7);
        let warm = BaselineSession::new(technique.as_mut()).run(&ev, budget);
        assert_eq!(&warm.samples, cold, "technique {name} drifted when warm");
        assert_warm(&ev, name);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Oracle 4: cached fast path vs the straight-line reference evaluator.
// ---------------------------------------------------------------------------

#[test]
fn fast_path_matches_naive_reference_bit_for_bit() {
    let fast = edge_evaluator(EvalEngine::serial());
    let reference = NaiveReferenceEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
    for point in spread_points(fast.space(), 16) {
        let expected = reference.evaluate(&point);
        let cold = fast.evaluate(&point);
        let warm = fast.evaluate(&point); // memoized path
        assert_eq!(cold, expected, "cold evaluation diverged at {point:?}");
        assert_eq!(warm, expected, "cache hit diverged at {point:?}");
    }
}

#[test]
fn batched_fast_path_matches_naive_reference() {
    let fast = edge_evaluator(EvalEngine::with_threads(4));
    let reference = NaiveReferenceEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper);
    let points = spread_points(fast.space(), 12);
    let batched = fast.evaluate_batch(&points);
    for (point, got) in points.iter().zip(&batched) {
        assert_eq!(
            got,
            &reference.evaluate(point),
            "batch diverged at {point:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Oracle 6: stepwise drivers vs blocking runs.
// ---------------------------------------------------------------------------

/// The Fig. 4 toy evaluator (all eight techniques finish it in well under
/// a second), parameterized over the evaluation engine so the oracle also
/// covers the parallel batch path.
fn toy_evaluator(engine: EvalEngine) -> CodesignEvaluator<FixedMapper> {
    CodesignEvaluator::new(
        bench::toy::toy_space(),
        vec![bench::toy::single_layer_model()],
        FixedMapper,
    )
    .with_engine(engine)
}

/// A deterministic baseline-technique factory for the driver oracle,
/// mirroring `bench::run_technique`'s registry.
fn toy_technique(kind: bench::TechniqueKind, seed: u64) -> Box<dyn DseTechnique> {
    use bench::TechniqueKind;
    match kind {
        TechniqueKind::Grid => Box::new(GridSearch),
        TechniqueKind::Random => Box::new(RandomSearch::new(seed)),
        TechniqueKind::Annealing => Box::new(SimulatedAnnealing::new(seed)),
        TechniqueKind::Genetic => Box::new(GeneticAlgorithm::new(8, seed)),
        TechniqueKind::Bayesian => Box::new(BayesianOpt::new(seed)),
        TechniqueKind::HyperMapper => Box::new(HyperMapperLike::new(seed)),
        TechniqueKind::Rl => Box::new(ConfuciuxRl::new(seed)),
        TechniqueKind::Explainable => unreachable!("explainable is not a baseline"),
    }
}

/// `SearchSession::run` / `BaselineSession::run` must be bit-identical to
/// stepping the corresponding driver by hand, for every technique, on both
/// the serial and the parallel engine — the API-redesign contract that lets
/// `edse-serve` interleave jobs without changing any result.
#[test]
fn driver_stepping_matches_blocking_run() {
    let budget = 24;
    let seed = 7;
    for engine in [EvalEngine::serial(), EvalEngine::with_threads(2)] {
        for kind in bench::TechniqueKind::ALL {
            if kind == bench::TechniqueKind::Explainable {
                let blocking_ev = toy_evaluator(engine);
                let config = DseConfig {
                    budget,
                    seed,
                    ..DseConfig::default()
                };
                let initial = blocking_ev.space().minimum_point();
                let blocking = SearchSession::new(dnn_latency_model(), config.clone())
                    .evaluator(&blocking_ev)
                    .run(initial.clone());

                let stepped_ev = toy_evaluator(engine);
                let mut driver = SearchSession::new(dnn_latency_model(), config)
                    .evaluator(&stepped_ev)
                    .driver(initial);
                let mut steps = 0usize;
                while driver.step() == edse_core::StepOutcome::Pending {
                    steps += 1;
                    assert!(steps < 10_000, "driver failed to terminate");
                }
                let stepped = driver.finish();
                assert_results_identical(&stepped, &blocking);
                assert_eq!(
                    stepped_ev.unique_evaluations(),
                    blocking_ev.unique_evaluations(),
                    "explainable driver re-evaluated points ({engine:?})"
                );
            } else {
                let blocking_ev = toy_evaluator(engine);
                let mut technique = toy_technique(kind, seed);
                let blocking = BaselineSession::new(technique.as_mut()).run(&blocking_ev, budget);

                let stepped_ev = toy_evaluator(engine);
                let mut driver = baselines::BaselineDriver::new(
                    move || toy_technique(kind, seed),
                    &stepped_ev,
                    budget,
                    &edse_core::JobSpec::default(),
                );
                let mut steps = 0usize;
                while driver.step() == edse_core::StepOutcome::Pending {
                    steps += 1;
                    assert!(steps < 10_000, "baseline driver failed to terminate");
                }
                let stepped = driver.finish();
                assert_eq!(
                    stepped.samples, blocking.samples,
                    "{kind:?} driver diverged ({engine:?})"
                );
                assert_eq!(stepped.technique, blocking.technique);
            }
        }
    }
}
