//! Directional claims of the paper that must hold at reproduction scale.
//!
//! These are not golden pins — they assert *relationships* the paper's
//! Fig. 4 and Fig. 11 report, so they survive intentional retuning that
//! would legitimately move a golden fixture:
//!
//! * on the toy walkthrough setting (ResNet CONV5_2 at 40 FPS),
//!   Explainable-DSE reaches the throughput target within the budget and
//!   its final incumbent is at least as good as every baseline's;
//! * on the full edge space (Fig. 11's setting, where black-box sampling
//!   can no longer get lucky — the toy space has only 42 points, so
//!   random sampling trivially stumbles onto the optimum there), the
//!   bottleneck-guided search reaches a demanding latency target in fewer
//!   evaluations than every black-box baseline *on average across seeds*,
//!   matching the paper's averaged convergence curves.

use bench::TechniqueKind;
use conformance::scenarios::{
    iterations_to_target, run_toy, run_with, SCENARIO_SEED, TOY_BUDGET, TOY_TARGET_MS,
};
use edse_core::evaluate::{CodesignEvaluator, EvalEngine};
use edse_core::space::edge_space;
use mapper::FixedMapper;
use workloads::zoo;

const BLACK_BOX: [TechniqueKind; 7] = [
    TechniqueKind::Grid,
    TechniqueKind::Random,
    TechniqueKind::Annealing,
    TechniqueKind::Genetic,
    TechniqueKind::Bayesian,
    TechniqueKind::HyperMapper,
    TechniqueKind::Rl,
];

#[test]
fn explainable_reaches_the_toy_target_within_budget() {
    let trace = run_toy(TechniqueKind::Explainable, TOY_BUDGET, SCENARIO_SEED);
    let hit = iterations_to_target(&trace, TOY_TARGET_MS);
    assert!(
        hit.is_some(),
        "Explainable-DSE never reached {TOY_TARGET_MS} ms in {TOY_BUDGET} evaluations"
    );
}

/// Fig. 4 (quality at equal budget): the incumbent Explainable-DSE holds
/// after the toy budget is at least as good as every baseline's.
#[test]
fn explainable_toy_incumbent_is_at_least_as_good_at_equal_budget() {
    let trace = run_toy(TechniqueKind::Explainable, TOY_BUDGET, SCENARIO_SEED);
    let best = trace
        .best_feasible()
        .expect("Explainable-DSE must find a feasible toy design")
        .objective;
    for kind in BLACK_BOX {
        let b = run_toy(kind, TOY_BUDGET, SCENARIO_SEED);
        if let Some(sample) = b.best_feasible() {
            assert!(
                best <= sample.objective,
                "{kind:?} found a better incumbent ({} ms) than Explainable-DSE ({best} ms)",
                sample.objective
            );
        }
    }
}

/// Fig. 11 (agility): on the full edge space against ResNet-18, the mean
/// number of evaluations to reach a demanding 4.6 ms latency target —
/// averaged across seeds, a run that never reaches it counting as
/// `budget + 1` — is strictly smaller for Explainable-DSE than for every
/// black-box baseline. The bottleneck-guided walk is seed-independent
/// here, so its mean is a single deterministic count.
#[test]
fn explainable_beats_every_baseline_in_mean_iterations_to_target() {
    const BUDGET: usize = 120;
    const TARGET_MS: f64 = 4.6;
    const SEEDS: std::ops::Range<u64> = 0..6;

    let mean_itt = |kind: TechniqueKind| -> f64 {
        let mut total = 0usize;
        for seed in SEEDS {
            let ev = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper)
                .with_engine(EvalEngine::serial());
            let trace = run_with(kind, &ev, BUDGET, seed);
            total += iterations_to_target(&trace, TARGET_MS).unwrap_or(BUDGET + 1);
        }
        total as f64 / (SEEDS.end - SEEDS.start) as f64
    };

    let explainable = mean_itt(TechniqueKind::Explainable);
    assert!(
        explainable <= BUDGET as f64,
        "Explainable-DSE never reached {TARGET_MS} ms within {BUDGET} evaluations"
    );
    for kind in BLACK_BOX {
        let baseline = mean_itt(kind);
        assert!(
            explainable < baseline,
            "{kind:?} reached {TARGET_MS} ms in {baseline:.1} mean evaluations, \
             Explainable-DSE took {explainable:.1} — the paper's agility claim \
             no longer holds"
        );
    }
}
