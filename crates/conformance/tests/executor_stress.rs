//! Bounded-time stress oracle for the shared executor: several tenant
//! threads each run the full threads × chunk × technique conformance
//! matrix *concurrently* against the one process-wide pool, and every
//! tenant must still observe bit-identical results.
//!
//! This is the multi-tenant version of `intra_layer.rs`: there the matrix
//! runs alone, here the pool is contended, scopes interleave at chunk
//! granularity, and workers steal across tenants — none of which may leak
//! into a single sample. `#[ignore]`d by default because it is a stress
//! test, not a unit test; `scripts/check.sh` runs it explicitly under
//! `EDSE_TEST_THREADS=2` with a timeout so CI keeps it bounded.

use baselines::{
    BaselineSession, BayesianOpt, ConfuciuxRl, DseTechnique, GeneticAlgorithm, GridSearch,
    HyperMapperLike, RandomSearch, SimulatedAnnealing,
};
use edse_core::evaluate::{CodesignEvaluator, EvalEngine, Evaluator};
use mapper::{LinearMapper, SweepConf};

const BUDGET: usize = 16;
const SEED: u64 = 7;
const TENANTS: usize = 3;

fn toy_evaluator(engine: EvalEngine, chunk: usize) -> CodesignEvaluator<LinearMapper> {
    let mapper = LinearMapper::new(8).with_sweep(SweepConf::serial().chunked(chunk));
    CodesignEvaluator::new(
        bench::toy::toy_space(),
        vec![bench::toy::single_layer_model()],
        mapper,
    )
    .with_engine(engine)
}

fn technique(kind: bench::TechniqueKind) -> Box<dyn DseTechnique> {
    use bench::TechniqueKind;
    match kind {
        TechniqueKind::Grid => Box::new(GridSearch),
        TechniqueKind::Random => Box::new(RandomSearch::new(SEED)),
        TechniqueKind::Annealing => Box::new(SimulatedAnnealing::new(SEED)),
        TechniqueKind::Genetic => Box::new(GeneticAlgorithm::new(8, SEED)),
        TechniqueKind::Bayesian => Box::new(BayesianOpt::new(SEED)),
        TechniqueKind::HyperMapper => Box::new(HyperMapperLike::new(SEED)),
        TechniqueKind::Rl => Box::new(ConfuciuxRl::new(SEED)),
        TechniqueKind::Explainable => unreachable!("baselines only under stress"),
    }
}

/// One tenant's pass over the matrix: every baseline technique × engine
/// budget × chunk size, digested into `(label, samples)` pairs.
fn matrix_digest(tenant: usize) -> Vec<(String, String)> {
    let engines = [
        EvalEngine::serial(),
        EvalEngine::with_threads(2),
        EvalEngine::default(),
    ];
    // Rotate the traversal order per tenant so tenants contend on
    // *different* cells at any instant — maximally unaligned scopes.
    let mut digests = Vec::new();
    let kinds = bench::TechniqueKind::ALL;
    for step in 0..kinds.len() {
        let kind = kinds[(step + tenant) % kinds.len()];
        if kind == bench::TechniqueKind::Explainable {
            continue;
        }
        for engine in engines {
            for chunk in [1usize, 3] {
                let ev = toy_evaluator(engine, chunk);
                let mut tech = technique(kind);
                let outcome = BaselineSession::new(tech.as_mut()).run(&ev, BUDGET);
                digests.push((
                    format!("{kind:?}/{engine:?}/chunk{chunk}"),
                    format!("{:?}|{}", outcome.samples, ev.unique_evaluations()),
                ));
            }
        }
    }
    digests.sort();
    digests
}

#[test]
#[ignore = "stress test; run explicitly (scripts/check.sh does, under EDSE_TEST_THREADS=2)"]
fn concurrent_tenants_see_bit_identical_matrices() {
    // Uncontended reference, computed before any tenant starts.
    let reference = matrix_digest(0);
    let spawned_before = edse_executor::Executor::global().counters().workers_spawned;
    let tenants: Vec<_> = (0..TENANTS)
        .map(|t| std::thread::spawn(move || matrix_digest(t)))
        .collect();
    for (t, handle) in tenants.into_iter().enumerate() {
        let digests = handle.join().expect("tenant thread panicked");
        assert_eq!(
            digests.len(),
            reference.len(),
            "tenant {t} matrix size diverged"
        );
        for ((label, digest), (ref_label, ref_digest)) in digests.iter().zip(&reference) {
            assert_eq!(label, ref_label, "tenant {t} matrix cells misaligned");
            assert_eq!(
                digest, ref_digest,
                "tenant {t} diverged under contention at {label}"
            );
        }
    }
    // The reference pass warmed the pool; the contended passes must not
    // have spawned a single thread beyond it.
    let spawned_after = edse_executor::Executor::global().counters().workers_spawned;
    assert_eq!(
        spawned_after, spawned_before,
        "contended tenants forced the pool to spawn threads"
    );
}
