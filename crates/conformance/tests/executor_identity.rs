//! Executor determinism oracle: full DSE runs on the Fig. 4 toy setting
//! must be bit-identical for every pool budget {1, 2, host default} ×
//! *injected claim-order perturbations* × all eight techniques.
//!
//! The shared executor's contract is that it decides only *who* computes a
//! task, never what the task computes or how results merge. The
//! perturbation hook (`edse_executor::set_claim_perturbation`) remaps the
//! claim counter through a random bijection, simulating the adversarial
//! steal interleavings a loaded multi-tenant pool produces — under the
//! contract, no seed may change a single sample. The hook is process
//! global, which is safe precisely because of that contract: a concurrent
//! test seeing a perturbed claim order is exactly the scenario being
//! pinned.

use baselines::{
    BaselineSession, BayesianOpt, ConfuciuxRl, DseTechnique, GeneticAlgorithm, GridSearch,
    HyperMapperLike, RandomSearch, SimulatedAnnealing,
};
use edse_core::bottleneck::dnn_latency_model;
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CodesignEvaluator, EvalEngine, Evaluator};
use edse_core::SearchSession;
use mapper::{LinearMapper, SweepConf};
use proptest::prelude::*;

const BUDGET: usize = 16;
const SEED: u64 = 7;

fn toy_evaluator(engine: EvalEngine, chunk: usize) -> CodesignEvaluator<LinearMapper> {
    let mapper = LinearMapper::new(8).with_sweep(SweepConf::serial().chunked(chunk));
    CodesignEvaluator::new(
        bench::toy::toy_space(),
        vec![bench::toy::single_layer_model()],
        mapper,
    )
    .with_engine(engine)
}

fn technique(kind: bench::TechniqueKind) -> Box<dyn DseTechnique> {
    use bench::TechniqueKind;
    match kind {
        TechniqueKind::Grid => Box::new(GridSearch),
        TechniqueKind::Random => Box::new(RandomSearch::new(SEED)),
        TechniqueKind::Annealing => Box::new(SimulatedAnnealing::new(SEED)),
        TechniqueKind::Genetic => Box::new(GeneticAlgorithm::new(8, SEED)),
        TechniqueKind::Bayesian => Box::new(BayesianOpt::new(SEED)),
        TechniqueKind::HyperMapper => Box::new(HyperMapperLike::new(SEED)),
        TechniqueKind::Rl => Box::new(ConfuciuxRl::new(SEED)),
        TechniqueKind::Explainable => unreachable!("handled separately"),
    }
}

/// A canonical serialization of one full run — every sample in order, the
/// unique-evaluation count, and (for explainable) the termination — so two
/// runs can be compared for bit-identity with one string equality.
fn run_digest(kind: bench::TechniqueKind, engine: EvalEngine) -> String {
    let ev = toy_evaluator(engine, 1);
    if kind == bench::TechniqueKind::Explainable {
        let config = DseConfig {
            budget: BUDGET,
            seed: SEED,
            ..DseConfig::default()
        };
        let initial = ev.space().minimum_point();
        let result = SearchSession::new(dnn_latency_model(), config)
            .evaluator(&ev)
            .run(initial);
        format!(
            "{:?}|{:?}|{:?}|{}",
            result.trace().samples,
            result.best(),
            result.termination(),
            ev.unique_evaluations()
        )
    } else {
        let mut tech = technique(kind);
        let outcome = BaselineSession::new(tech.as_mut()).run(&ev, BUDGET);
        format!("{:?}|{}", outcome.samples, ev.unique_evaluations())
    }
}

fn engine_for(budget_choice: usize) -> EvalEngine {
    match budget_choice {
        0 => EvalEngine::serial(),
        1 => EvalEngine::with_threads(2),
        _ => EvalEngine::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_pool_budget_and_claim_order_is_bit_identical(
        kind_index in 0usize..bench::TechniqueKind::ALL.len(),
        budget_choice in 0usize..3,
        perturbation in 1u64..u64::MAX,
    ) {
        let kind = bench::TechniqueKind::ALL[kind_index];
        // Reference: serial engine, natural claim order.
        edse_executor::set_claim_perturbation(0);
        let reference = run_digest(kind, EvalEngine::serial());
        // Candidate: sampled pool budget under an adversarial claim order.
        edse_executor::set_claim_perturbation(perturbation);
        let candidate = run_digest(kind, engine_for(budget_choice));
        edse_executor::set_claim_perturbation(0);
        prop_assert_eq!(
            candidate, reference,
            "{:?} diverged under budget choice {} perturbation {:#x}",
            kind, budget_choice, perturbation
        );
    }
}

/// The executor's spawn-free steady state, pinned end to end: warm the
/// pool with one toy run, then assert a full eight-technique pass spawns
/// zero threads while avoided-spawn accounting keeps climbing.
#[test]
fn full_technique_pass_spawns_no_threads_after_warm_up() {
    edse_executor::set_claim_perturbation(0);
    let _ = run_digest(bench::TechniqueKind::Grid, EvalEngine::with_threads(2));
    let warm = edse_executor::Executor::global().counters();
    for kind in bench::TechniqueKind::ALL {
        let _ = run_digest(kind, EvalEngine::with_threads(2));
    }
    let after = edse_executor::Executor::global().counters();
    assert_eq!(
        after.workers_spawned, warm.workers_spawned,
        "warm pool spawned threads during a full technique pass"
    );
    assert!(
        after.spawn_avoided > warm.spawn_avoided,
        "pooled batches should record avoided spawns"
    );
}
