//! Golden-fixture conformance: every pinned scenario regenerates its
//! report and compares it against the committed `golden/*.json` fixture.
//!
//! One `#[test]` per scenario so a drift names the scenario in the test
//! listing as well as in the mismatch paths. Regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test -p conformance` and commit the diff.

use conformance::{all_scenarios, check_golden, golden_dir};

fn check(name: &str) {
    let scenario = all_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario {name} is not registered"));
    check_golden(name, &scenario.run());
}

#[test]
fn toy_explainable() {
    check("toy_explainable");
}

#[test]
fn toy_grid() {
    check("toy_grid");
}

#[test]
fn toy_random() {
    check("toy_random");
}

#[test]
fn toy_annealing() {
    check("toy_annealing");
}

#[test]
fn toy_genetic() {
    check("toy_genetic");
}

#[test]
fn toy_bayesian() {
    check("toy_bayesian");
}

#[test]
fn toy_hypermapper() {
    check("toy_hypermapper");
}

#[test]
fn toy_rl() {
    check("toy_rl");
}

#[test]
fn edge_explainable_resnet18() {
    check("edge_explainable_resnet18");
}

#[test]
fn edge_random_resnet18() {
    check("edge_random_resnet18");
}

/// Every registered scenario has a test above — adding a scenario without
/// pinning it is itself a failure.
#[test]
fn every_scenario_is_pinned() {
    assert_eq!(all_scenarios().len(), 10, "add a #[test] for new scenarios");
}

/// Every committed fixture corresponds to a registered scenario, so a
/// renamed scenario can't silently orphan (and thus unpin) its fixture.
#[test]
fn no_orphaned_fixtures() {
    let names: Vec<String> = all_scenarios()
        .iter()
        .map(|s| format!("{}.json", s.name))
        .collect();
    for entry in std::fs::read_dir(golden_dir()).expect("golden dir is committed") {
        let file = entry.unwrap().file_name().into_string().unwrap();
        assert!(
            names.iter().any(|n| n == &file),
            "golden/{file} has no registered scenario — remove it or register one"
        );
    }
}
