//! Intra-layer parallelism matrix: full DSE runs must be bit-identical
//! across evaluation-engine worker counts (1, 2, and the host default) ×
//! intra-layer sweep chunk sizes × all eight techniques, on the Fig. 4
//! toy setting.
//!
//! This is the end-to-end pin for the mapper-v2 kernel: the engine hands
//! each layer-mapping job an intra-layer worker budget, the mapper splits
//! its ordering×tiling sweep into chunks across those workers, and the
//! deterministic merge must leave *no trace of either knob* in any search
//! outcome — same samples, same best point, same termination, same unique
//! evaluation count. On the 1-CPU CI container `EDSE_TEST_THREADS=2`
//! (exported by `scripts/check.sh`) keeps the host-default column from
//! silently collapsing into the serial one.

use baselines::{
    BaselineSession, BayesianOpt, ConfuciuxRl, DseTechnique, GeneticAlgorithm, GridSearch,
    HyperMapperLike, RandomSearch, SimulatedAnnealing,
};
use edse_core::bottleneck::dnn_latency_model;
use edse_core::dse::{DseConfig, DseResult};
use edse_core::evaluate::{CodesignEvaluator, EvalEngine, Evaluator};
use edse_core::SearchSession;
use mapper::{LinearMapper, SweepConf};

const BUDGET: usize = 16;
const SEED: u64 = 7;

/// The toy-space evaluator with a real (space-sweeping) mapper, so DSE
/// evaluations actually exercise the batched tiling kernel. `chunk` sets
/// the sweep's work-item granularity; the engine supplies the worker
/// budget per layer job at run time.
fn toy_evaluator(engine: EvalEngine, chunk: usize) -> CodesignEvaluator<LinearMapper> {
    let mapper = LinearMapper::new(8).with_sweep(SweepConf::serial().chunked(chunk));
    CodesignEvaluator::new(
        bench::toy::toy_space(),
        vec![bench::toy::single_layer_model()],
        mapper,
    )
    .with_engine(engine)
}

/// The engine column of the matrix: serial, two workers, and the host
/// default (`threads: None`, which `EDSE_TEST_THREADS` overrides on CI).
fn engines() -> [EvalEngine; 3] {
    [
        EvalEngine::serial(),
        EvalEngine::with_threads(2),
        EvalEngine::default(),
    ]
}

/// Sweep chunk sizes: single-item (maximal interleaving), a small odd
/// size that leaves a ragged tail, and one larger than any toy sweep
/// (degenerates to one chunk per worker).
const CHUNKS: [usize; 3] = [1, 3, 1 << 20];

/// Every `DseResult` field except the wall clock.
fn assert_results_identical(a: &DseResult, b: &DseResult, what: &str) {
    assert_eq!(a.trace().samples, b.trace().samples, "{what}: samples");
    assert_eq!(a.attempts(), b.attempts(), "{what}: attempts");
    assert_eq!(a.best(), b.best(), "{what}: best");
    assert_eq!(
        a.converged_after(),
        b.converged_after(),
        "{what}: convergence"
    );
    assert_eq!(a.termination(), b.termination(), "{what}: termination");
}

fn technique(kind: bench::TechniqueKind) -> Box<dyn DseTechnique> {
    use bench::TechniqueKind;
    match kind {
        TechniqueKind::Grid => Box::new(GridSearch),
        TechniqueKind::Random => Box::new(RandomSearch::new(SEED)),
        TechniqueKind::Annealing => Box::new(SimulatedAnnealing::new(SEED)),
        TechniqueKind::Genetic => Box::new(GeneticAlgorithm::new(8, SEED)),
        TechniqueKind::Bayesian => Box::new(BayesianOpt::new(SEED)),
        TechniqueKind::HyperMapper => Box::new(HyperMapperLike::new(SEED)),
        TechniqueKind::Rl => Box::new(ConfuciuxRl::new(SEED)),
        TechniqueKind::Explainable => unreachable!("explainable is not a baseline"),
    }
}

fn run_explainable(engine: EvalEngine, chunk: usize) -> (DseResult, usize) {
    let ev = toy_evaluator(engine, chunk);
    let config = DseConfig {
        budget: BUDGET,
        seed: SEED,
        ..DseConfig::default()
    };
    let initial = ev.space().minimum_point();
    let result = SearchSession::new(dnn_latency_model(), config)
        .evaluator(&ev)
        .run(initial);
    (result, ev.unique_evaluations())
}

#[test]
fn explainable_search_is_bit_identical_across_threads_and_chunks() {
    let (reference, reference_uniques) = run_explainable(EvalEngine::serial(), 1);
    for engine in engines() {
        for chunk in CHUNKS {
            let (result, uniques) = run_explainable(engine, chunk);
            let what = format!("explainable, {engine:?}, chunk {chunk}");
            assert_results_identical(&result, &reference, &what);
            assert_eq!(uniques, reference_uniques, "{what}: unique evaluations");
        }
    }
}

#[test]
fn baseline_searches_are_bit_identical_across_threads_and_chunks() {
    for kind in bench::TechniqueKind::ALL {
        if kind == bench::TechniqueKind::Explainable {
            continue; // covered by the dedicated test above
        }
        let reference_ev = toy_evaluator(EvalEngine::serial(), 1);
        let mut reference_tech = technique(kind);
        let reference = BaselineSession::new(reference_tech.as_mut()).run(&reference_ev, BUDGET);
        for engine in engines() {
            for chunk in CHUNKS {
                let ev = toy_evaluator(engine, chunk);
                let mut tech = technique(kind);
                let outcome = BaselineSession::new(tech.as_mut()).run(&ev, BUDGET);
                assert_eq!(
                    outcome.samples, reference.samples,
                    "{kind:?} diverged ({engine:?}, chunk {chunk})"
                );
                assert_eq!(outcome.technique, reference.technique);
                assert_eq!(
                    ev.unique_evaluations(),
                    reference_ev.unique_evaluations(),
                    "{kind:?} unique evaluations diverged ({engine:?}, chunk {chunk})"
                );
            }
        }
    }
}
