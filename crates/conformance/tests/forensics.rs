//! Search-forensics conformance: the trace alone must reconstruct the
//! full "why" chain of the final design, deterministically, and every
//! exporter's output must load cleanly.
//!
//! 1. `edse-trace why best` semantics: two identical runs render
//!    byte-identical provenance narratives, and the chain runs from the
//!    parentless first incumbent to the run's actual best point with a
//!    bottleneck factor + scaling action (or restart) at every hop.
//! 2. The Chrome trace-event export parses as JSON with well-formed
//!    complete events; the flamegraph export is line-wise
//!    `path self_µs` with self-times that sum to no more than the root
//!    spans' total.

use edse_core::bottleneck::dnn_latency_model;
use edse_core::dse::DseConfig;
use edse_core::evaluate::{CodesignEvaluator, Evaluator};
use edse_core::space::edge_space;
use edse_core::SearchSession;
use edse_telemetry::json::Json;
use edse_telemetry::{export, json, trace, Collector, Event, MemorySink};
use mapper::FixedMapper;
use workloads::zoo;

/// One fully-instrumented toy search (the fig04 shape): explainable DSE
/// on the edge space, budget 40, every event captured in memory.
fn traced_run() -> (Vec<Event>, Vec<usize>) {
    let sink = MemorySink::new();
    let collector = Collector::builder().sink(sink.clone()).build();
    let evaluator = CodesignEvaluator::new(edge_space(), vec![zoo::resnet18()], FixedMapper)
        .with_telemetry(collector.clone());
    let result = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget: 40,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator)
    .telemetry(collector.clone())
    .run(evaluator.space().minimum_point());
    collector.flush();
    let best = result
        .best()
        .expect("toy search finds a feasible design")
        .0
        .indices()
        .to_vec();
    (sink.events(), best)
}

#[test]
fn why_best_is_byte_stable_and_reaches_the_final_design() {
    let (events_a, best_a) = traced_run();
    let (events_b, best_b) = traced_run();
    assert_eq!(
        best_a, best_b,
        "the toy search itself must be deterministic"
    );

    let render = |events: &[Event]| {
        let records = trace::provenance_records(events);
        trace::render_why(&trace::why_chain(&records, None).expect("chain for best"))
    };
    let (text_a, text_b) = (render(&events_a), render(&events_b));
    assert_eq!(
        text_a, text_b,
        "identical runs must render byte-identical why-best narratives"
    );

    // The chain itself: parentless root, the actual best design at the
    // end, and a causal explanation at every intermediate hop.
    let records = trace::provenance_records(&events_a);
    let chain = trace::why_chain(&records, None).unwrap();
    assert_eq!(chain.first().unwrap().parent, None);
    assert_eq!(chain.last().unwrap().point, best_a);
    assert!(chain.last().unwrap().new_best);
    for hop in &chain[1..] {
        assert!(hop.parent.is_some(), "non-root hop without a parent");
        let explained = hop.bottleneck.is_some() || hop.action.contains("perturbation");
        assert!(
            explained,
            "hop lacks a bottleneck or restart action: {hop:?}"
        );
        if hop.bottleneck.is_some() {
            assert!(
                hop.scaling.is_some(),
                "bottleneck hop without its scaling factor: {hop:?}"
            );
        }
    }
    // The rendering carries those facts (the narrative the CLI prints).
    assert!(text_a.contains("phase-start point (no parent incumbent)"));
    assert!(text_a.contains("new incumbent"));
    assert!(
        text_a.lines().filter(|l| l.contains("action: ")).count() == chain.len(),
        "every hop renders its action"
    );
}

#[test]
fn chrome_export_loads_as_wellformed_trace_events() {
    let (events, _) = traced_run();
    let text = export::chrome_trace(&events);
    let doc = json::parse(&text).expect("chrome export must be valid JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());
    for ev in trace_events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("phase");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        assert!(ev.get("ts").and_then(Json::as_f64).is_some());
        if ph == "X" {
            assert!(ev.get("dur").and_then(Json::as_f64).is_some());
        }
    }
    // The span instants include the search's decision points.
    assert!(text.contains("provenance evaluated"));
}

#[test]
fn flamegraph_export_is_wellformed_collapsed_stacks() {
    let (events, _) = traced_run();
    let text = export::flamegraph(&events);
    assert!(!text.is_empty());
    let mut total_self = 0u64;
    for line in text.lines() {
        let (path, value) = line.rsplit_once(' ').expect("`path self_us` shape");
        assert!(!path.is_empty());
        total_self += value.parse::<u64>().expect("numeric self time");
    }
    // Self-times partition wall-clock: they can never exceed the total
    // elapsed of the root spans.
    let tree = trace::SpanTree::build(&events);
    let root_total: u64 = tree.roots.iter().map(|&i| tree.nodes[i].elapsed_us).sum();
    assert!(
        total_self <= root_total,
        "flamegraph self-times {total_self} exceed root elapsed {root_total}"
    );
}
