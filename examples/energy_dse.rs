//! Minimizing *energy* instead of latency: the same DSE loop driven by the
//! energy bottleneck model (`dnn_energy_model`), with the same area/power/
//! throughput constraints — demonstrating the paper's claim (§B) that the
//! bottleneck-model API is cost-agnostic.
//!
//! Run with: `cargo run --release --example energy_dse`

use explainable_dse::core::bottleneck::{dnn_energy_model, dnn_latency_model};
use explainable_dse::core::evaluate::Objective;
use explainable_dse::prelude::*;

fn run(objective: Objective, model: DnnModel) -> (String, Option<(f64, f64)>) {
    let evaluator = CodesignEvaluator::new(edge_space(), vec![model], LinearMapper::new(60))
        .with_objective(objective);
    let bottleneck_model = match objective {
        Objective::Energy => dnn_energy_model(),
        _ => dnn_latency_model(),
    };
    let session = SearchSession::new(
        bottleneck_model,
        DseConfig {
            budget: 200,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator);
    let initial = evaluator.space().minimum_point();
    let result = session.run(initial);
    let name = format!("{objective:?}");
    let summary = result.best().as_ref().map(|(point, eval)| {
        // Latency is always the third constraint; energy is tracked in the
        // evaluation regardless of the objective.
        let latency = eval.constraint_values[2];
        let _ = point;
        (latency, eval.energy_mj)
    });
    (name, summary)
}

fn main() {
    let model = zoo::mobilenet_v2();
    println!(
        "objective comparison for {} (same constraints):\n",
        model.name()
    );
    println!(
        "{:>10} {:>14} {:>14}",
        "objective", "latency (ms)", "energy (mJ)"
    );
    for objective in [Objective::Latency, Objective::Energy] {
        let (name, summary) = run(objective, model.clone());
        match summary {
            Some((latency, energy)) => {
                println!("{name:>10} {latency:>14.3} {energy:>14.3}");
            }
            None => println!("{name:>10} {:>14} {:>14}", "-", "-"),
        }
    }
    println!(
        "\nthe energy-driven run should trade latency headroom (it only needs to\n\
         meet the throughput floor) for lower data-movement energy — same\n\
         analyzer, same DSE loop, different bottleneck tree."
    );
}
