//! Latency/energy trade-off exploration (§4.2's multi-objective note):
//! sweep the weights of `Objective::Weighted`, run the bottleneck-guided
//! DSE with the matching composed bottleneck model, and print the Pareto
//! front of the designs found.
//!
//! Run with: `cargo run --release --example pareto`

use explainable_dse::core::bottleneck::dnn_weighted_model;
use explainable_dse::core::evaluate::Objective;
use explainable_dse::prelude::*;

fn main() {
    let model = zoo::mobilenet_v2();
    println!("latency/energy sweep for {}:\n", model.name());
    println!(
        "{:>8} {:>8} {:>14} {:>14}",
        "alpha", "beta", "latency (ms)", "energy (mJ)"
    );

    let mut points: Vec<(f64, f64)> = Vec::new();
    for (alpha, beta) in [(1.0, 0.0), (1.0, 0.3), (1.0, 1.0), (0.3, 1.0), (0.0, 1.0)] {
        // Codesign setting: the mapper adapts tilings to each hardware
        // point, so mappability never gates the energy-heavy runs.
        let evaluator =
            CodesignEvaluator::new(edge_space(), vec![model.clone()], LinearMapper::new(60))
                .with_objective(Objective::Weighted {
                    alpha_ms: alpha,
                    beta_mj: beta,
                });
        let session = SearchSession::new(
            dnn_weighted_model(alpha, beta),
            DseConfig {
                budget: 150,
                ..DseConfig::default()
            },
        )
        .evaluator(&evaluator);
        let initial = evaluator.space().minimum_point();
        let result = session.run(initial);
        match &result.best() {
            Some((_, eval)) => {
                let latency = eval.constraint_values[2];
                println!(
                    "{alpha:>8.1} {beta:>8.1} {:>14.3} {:>14.3}",
                    latency, eval.energy_mj
                );
                points.push((latency, eval.energy_mj));
            }
            None => println!("{alpha:>8.1} {beta:>8.1} {:>14} {:>14}", "-", "-"),
        }
    }

    // Extract the non-dominated set.
    points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut front: Vec<(f64, f64)> = Vec::new();
    let mut best_energy = f64::INFINITY;
    for (lat, en) in points {
        if en < best_energy {
            best_energy = en;
            front.push((lat, en));
        }
    }
    println!("\nPareto front (latency ms, energy mJ):");
    for (lat, en) in &front {
        println!("  ({lat:.3}, {en:.3})");
    }
    println!(
        "\nthe weights steer the same bottleneck-guided loop along the trade-off:\n\
     latency-heavy weights buy speed with more data movement; energy-heavy\n\
     weights accept slower, reuse-maximizing designs."
    );
}
