//! Head-to-head comparison of every DSE technique on one workload —
//! a miniature of the paper's Fig. 9/10 sweep.
//!
//! Run with: `cargo run --release --example compare_optimizers [budget]`

use explainable_dse::opt::{
    BayesianOpt, ConfuciuxRl, DseTechnique, GeneticAlgorithm, GridSearch, HyperMapperLike,
    RandomSearch, SimulatedAnnealing,
};
use explainable_dse::prelude::*;

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let model = zoo::resnet18();
    println!(
        "comparing DSE techniques for {} (budget {budget} evaluations, fixed dataflow)\n",
        model.name()
    );
    println!(
        "{:>14} {:>8} {:>14} {:>10} {:>9}",
        "technique", "evals", "best (ms)", "feasible%", "time (s)"
    );

    let run = |trace: Trace| {
        let best = trace
            .best_feasible()
            .map(|s| format!("{:.3}", s.objective))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>14} {:>8} {:>14} {:>9.1}% {:>9.2}",
            trace.technique,
            trace.evaluations(),
            best,
            trace.feasibility_rate() * 100.0,
            trace.wall_seconds
        );
    };

    // Baselines (each on a fresh evaluator so caching is fair).
    let mut baselines: Vec<Box<dyn DseTechnique>> = vec![
        Box::new(GridSearch),
        Box::new(RandomSearch::new(1)),
        Box::new(SimulatedAnnealing::new(1)),
        Box::new(GeneticAlgorithm::new(16, 1)),
        Box::new(BayesianOpt::new(1)),
        Box::new(HyperMapperLike::new(1)),
        Box::new(ConfuciuxRl::new(1)),
    ];
    for technique in &mut baselines {
        let evaluator = CodesignEvaluator::new(edge_space(), vec![model.clone()], FixedMapper);
        run(technique.run(&evaluator, budget));
    }

    // Explainable-DSE.
    let evaluator = CodesignEvaluator::new(edge_space(), vec![model.clone()], FixedMapper);
    let session = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator);
    let initial = evaluator.space().minimum_point();
    let result = session.run(initial);
    run(result.into_trace());
}
