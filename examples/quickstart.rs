//! Quickstart: explore an edge-accelerator codesign for ResNet-18 with
//! Explainable-DSE and print the explanation artifacts.
//!
//! Run with: `cargo run --release --example quickstart`

use explainable_dse::prelude::*;

fn main() {
    // 1) The problem: the paper's Table-1 design space, one target
    //    workload, edge constraints (75 mm^2, 4 W, 40 FPS), and a mapping
    //    optimizer in the loop (tightly coupled codesign).
    let model = zoo::resnet18();
    println!(
        "workload: {} ({} layers, {:.2} GMACs, needs {} FPS)",
        model.name(),
        model.layer_count(),
        model.total_macs() as f64 / 1e9,
        model.target().inferences_per_second()
    );
    let evaluator = CodesignEvaluator::new(edge_space(), vec![model], LinearMapper::new(64));

    // 2) The explorer: the DNN latency bottleneck model drives
    //    acquisitions. A SearchSession could additionally checkpoint the
    //    run (`.checkpoint("run.ckpt.json").resume(true)`).
    let session = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget: 150,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator);

    // 3) Run from the minimum configuration.
    let initial = evaluator.space().minimum_point();
    let result = session.run(initial);

    // 4) Report: best codesign, convergence, and per-attempt explanations.
    println!(
        "\nexplored {} designs in {:.1} s ({})",
        result.trace().evaluations(),
        result.trace().wall_seconds,
        result.termination()
    );
    match &result.best() {
        Some((point, eval)) => {
            let cfg = evaluator.decode(point);
            println!(
                "best codesign: {} PEs, {} B RF, {} kB SPM, {} MB/s, {}-bit NoCs",
                cfg.pes,
                cfg.l1_bytes,
                cfg.l2_bytes / 1024,
                cfg.offchip_bw_mbps,
                cfg.noc_width_bits
            );
            println!(
                "latency {:.3} ms | area {:.1} mm^2 | power {:.2} W | energy {:.2} mJ",
                eval.objective, eval.area_mm2, eval.power_w, eval.energy_mj
            );
        }
        None => println!("no feasible codesign found within the budget"),
    }

    println!("\n--- why the DSE did what it did (first three attempts) ---");
    for attempt in result.attempts().iter().take(3) {
        println!("attempt {}: {}", attempt.index(), attempt.decision());
        for line in attempt.analyses().iter().take(2) {
            println!("  {line}");
        }
    }
}
