//! Expressing a *custom* domain-specific bottleneck model through the
//! paper's Fig. 7 API — here an **energy** bottleneck model instead of the
//! built-in latency one, demonstrating that the tree/dictionary/mitigation
//! interface is cost- and domain-agnostic.
//!
//! The tree decomposes inference energy into compute, on-chip movement, and
//! DRAM traffic; the mitigation subroutines grow the scratchpad when DRAM
//! energy dominates and shrink over-provisioned bandwidth.
//!
//! Run with: `cargo run --release --example custom_bottleneck_model`

use explainable_dse::core::bottleneck::{BottleneckModel, TreeBuilder};
use explainable_dse::core::space::edge;
use explainable_dse::prelude::*;
use explainable_dse::tech::Tech;
use workloads::Tensor;

/// Context for the energy analysis: profile + config, same shape as the
/// built-in latency context but consumed by a different tree.
#[derive(Clone, Copy)]
struct EnergyCtx {
    cfg: AcceleratorConfig,
    profile: ExecutionProfile,
}

/// Builds an energy bottleneck model: `E = E_comp + E_noc + E_spm + E_dram`
/// with per-operand DRAM leaves.
fn energy_model() -> BottleneckModel<EnergyCtx> {
    BottleneckModel::new(|ctx: &EnergyCtx| {
        let tech = Tech::n45();
        let e = tech.energy_table(&ctx.cfg.resources());
        let p = &ctx.profile;
        let mut b = TreeBuilder::new();
        let comp = b.leaf("e_comp", p.macs * e.mac_pj);
        let noc_total: f64 = Tensor::ALL.iter().map(|op| p.operand(*op).noc_bytes).sum();
        let noc = b.leaf("e_noc", noc_total * (e.noc_pj_per_byte + e.spm_pj_per_byte));
        let dram_children: Vec<_> = Tensor::ALL
            .iter()
            .map(|op| {
                b.leaf(
                    format!("e_dram:{}", op.tag()),
                    p.operand(*op).offchip_bytes * e.dram_pj_per_byte,
                )
            })
            .collect();
        let dram = b.sum("e_dram", dram_children);
        let root = b.sum("energy", vec![comp, noc, dram]);
        b.build(root)
    })
    // Dictionary: DRAM energy is governed by the scratchpad (reuse) and
    // NoC energy by the register file.
    .relate("e_dram", vec![edge::L2_KB])
    .relate("e_noc", vec![edge::L1_BYTES])
    // Mitigations: target the remaining reuse of the dominant operand.
    .mitigation(edge::L2_KB, |ctx: &EnergyCtx, m| {
        let current_kb = ctx.cfg.l2_bytes as f64 / 1024.0;
        let op = Tensor::ALL
            .iter()
            .copied()
            .max_by(|a, b| {
                ctx.profile
                    .operand(*a)
                    .offchip_bytes
                    .partial_cmp(&ctx.profile.operand(*b).offchip_bytes)
                    .unwrap()
            })
            .expect("four operands");
        let remaining = ctx.profile.operand(op).reuse_remaining_spm;
        (remaining > 1.0).then(|| current_kb * m.scaling.min(remaining))
    })
    .mitigation(edge::L1_BYTES, |ctx: &EnergyCtx, m| {
        Some(ctx.cfg.l1_bytes as f64 * m.scaling.min(4.0))
    })
}

fn main() {
    let layer = LayerShape::conv(1, 128, 128, 28, 28, 3, 3, 1);
    let cfg = AcceleratorConfig::edge_baseline();
    let mapping = Mapping::fixed_output_stationary(&layer, &cfg);
    let profile = cfg.execute(&layer, &mapping).expect("feasible mapping");
    let ctx = EnergyCtx { cfg, profile };

    let model = energy_model();
    let analysis = model.analyze(&ctx, 2);

    println!("populated energy bottleneck tree for {}:", layer.describe());
    println!("{}", analysis.tree.render());
    println!(
        "primary bottleneck: {} (scale {:.2}x)",
        analysis.bottleneck, analysis.scaling
    );
    for p in &analysis.predictions {
        println!("prediction for param {}: {}", p.param, p.rationale);
    }

    // The same generic analyzer, driven by an entirely different tree —
    // this is the decoupling the paper's API section argues for.
    assert!(analysis.tree.value(analysis.tree.root()) > 0.0);
}
