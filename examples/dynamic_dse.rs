//! Dynamic DSE: the 100-iteration budget of the paper's Table 2, e.g. for
//! deploying an accelerator overlay onto an FPGA right before launch. The
//! explainable DSE lands a feasible, efficient design inside the budget
//! while a random search typically cannot.
//!
//! Run with: `cargo run --release --example dynamic_dse`

use explainable_dse::opt::{DseTechnique, RandomSearch};
use explainable_dse::prelude::*;

fn main() {
    let budget = 100;
    let model = zoo::efficientnet_b0();
    println!(
        "dynamic exploration for {} within {budget} iterations",
        model.name()
    );

    // Explainable DSE.
    let evaluator = CodesignEvaluator::new(edge_space(), vec![model.clone()], FixedMapper);
    let session = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator);
    let initial = evaluator.space().minimum_point();
    let explainable = session.run(initial);

    // Random-search baseline under the identical budget.
    let evaluator2 = CodesignEvaluator::new(edge_space(), vec![model.clone()], FixedMapper);
    let random = RandomSearch::new(1).run(&evaluator2, budget);

    let describe = |name: &str, trace: &Trace| match trace.best_feasible() {
        Some(best) => println!(
            "{name:>14}: best feasible latency {:.3} ms after {} evaluations ({:.1}% feasible)",
            best.objective,
            trace.evaluations(),
            trace.feasibility_rate() * 100.0
        ),
        None => println!(
            "{name:>14}: NO feasible design in {} evaluations ({:.1}% met constraints)",
            trace.evaluations(),
            trace.feasibility_rate() * 100.0
        ),
    };
    describe("explainable", explainable.trace());
    describe("random", &random);

    // Convergence sketch: running best every 20 evaluations.
    println!("\nrunning best feasible latency (ms) over the budget:");
    println!("{:>6} {:>14} {:>14}", "iter", "explainable", "random");
    let e_curve = explainable.trace().convergence_curve();
    let r_curve = random.convergence_curve();
    for i in (19..budget).step_by(20) {
        let fmt = |c: &Vec<f64>| {
            c.get(i.min(c.len().saturating_sub(1)))
                .map(|v| {
                    if v.is_finite() {
                        format!("{v:.2}")
                    } else {
                        "-".to_string()
                    }
                })
                .unwrap_or_else(|| "-".into())
        };
        println!("{:>6} {:>14} {:>14}", i + 1, fmt(&e_curve), fmt(&r_curve));
    }
}
