//! Multi-workload codesign: one accelerator for a vision model *and* a
//! language model at once (§4.4's aggregation across sub-functions of
//! multiple workloads). The DSE must satisfy both throughput floors while
//! minimizing their combined latency.
//!
//! Run with: `cargo run --release --example multi_workload`

use explainable_dse::prelude::*;

fn main() {
    let vision = zoo::mobilenet_v2();
    let language = zoo::bert_base();
    println!(
        "co-designing one accelerator for {} ({} unique shapes) and {} ({} unique shapes)",
        vision.name(),
        vision.unique_shape_count(),
        language.name(),
        language.unique_shape_count()
    );

    let evaluator = CodesignEvaluator::new(
        edge_space(),
        vec![vision.clone(), language.clone()],
        FixedMapper,
    );
    let session = SearchSession::new(
        dnn_latency_model(),
        DseConfig {
            budget: 200,
            ..DseConfig::default()
        },
    )
    .evaluator(&evaluator);
    let initial = evaluator.space().minimum_point();
    let result = session.run(initial);

    println!(
        "explored {} designs ({})",
        result.trace().evaluations(),
        result.termination()
    );
    let Some((point, eval)) = &result.best() else {
        println!("no design satisfied both workloads' constraints in this budget");
        return;
    };
    let cfg = evaluator.decode(point);
    println!(
        "best shared design: {} PEs, {} kB SPM, {} MB/s (area {:.1} mm^2, power {:.2} W)",
        cfg.pes,
        cfg.l2_bytes / 1024,
        cfg.offchip_bw_mbps,
        eval.area_mm2,
        eval.power_w
    );

    // Per-workload breakdown: the latency constraints sit after area/power.
    for (i, model) in [&vision, &language].iter().enumerate() {
        let latency = eval.constraint_values[2 + i];
        println!(
            "  {}: {:.3} ms (ceiling {:.3} ms)",
            model.name(),
            latency,
            model.target().latency_ceiling_ms()
        );
    }

    // Which layers dominate the shared cost? The top entries are what the
    // aggregation (top-K with threshold) focused its mitigation on.
    let mut layers = eval.layers.clone();
    layers.sort_by(|a, b| b.latency_ms.partial_cmp(&a.latency_ms).unwrap());
    println!("\ncost-critical sub-functions across both workloads:");
    for l in layers.iter().take(5) {
        println!(
            "  {:>22} [{}] {:.3} ms (x{})",
            l.name, l.model, l.latency_ms, l.count
        );
    }
}
